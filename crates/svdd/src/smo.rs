//! Sequential Minimal Optimization for the (weighted) SVDD dual.
//!
//! The dual problem (paper Eq. 11, after dropping the constant linear term
//! `Σ α_i K_ii = 1` of the Gaussian kernel) is
//!
//! ```text
//! minimize   f(α) = αᵀ K α
//! subject to Σ_i α_i = 1,   0 <= α_i <= u_i        (u_i = ω_i C)
//! ```
//!
//! Because every coefficient in the equality constraint is `+1`, a feasible
//! direction moves mass from one multiplier to another. Each SMO iteration:
//!
//! 1. **selects** the pair with maximum first-order KKT violation —
//!    `i = argmin G_k` over `α_k < u_k` (most profitable to grow) and
//!    `j = argmax G_k` over `α_k > 0` (most profitable to shrink), where
//!    `G = 2Kα` is the gradient;
//! 2. **moves** `δ = (G_j − G_i) / (2η)` with curvature
//!    `η = K_ii + K_jj − 2K_ij = 2(1 − K_ij) > 0`, clipped to the box;
//! 3. **updates** the gradient with the two kernel rows:
//!    `G_k += 2δ (K_ik − K_jk)`.
//!
//! Convergence: the duality gap proxy `G_j − G_i` is monotone under exact
//! pair optimization (Keerthi et al.); iteration stops at
//! [`SmoOptions::tolerance`] or the iteration cap.
//!
//! # Warm starts
//!
//! During support vector expansion the same sub-cluster is solved once per
//! round over a mostly-overlapping target set. Attaching a
//! [`SolverSession`] (see [`SvddProblem::with_session`]) makes consecutive
//! solves reuse the previous round's multipliers: each carried-over α_i is
//! clipped into the *new* box `[0, u_i]` (the weights ω_i change every
//! round) and the sum is repaired back to the simplex — scaled down when
//! `Σα > 1`, greedily topped up in index order when `Σα < 1`. The repaired
//! point is feasible by construction and, because consecutive rounds differ
//! by a few boundary points, usually near-optimal: the remaining work is
//! the one O(ñ · #seeds) gradient reconstruction plus a handful of
//! iterations. [`SolveDiagnostics::initial_kkt_violation`] measures exactly
//! how good the seed was.
//!
//! # Active-set shrinking
//!
//! Most multipliers sit pinned at a bound with strongly-signed gradients
//! long before convergence (interior points at 0, outliers at u_i).
//! Shrinking drops them from working-set selection *and* gradient
//! maintenance: every [`SmoOptions::shrink_interval`] iterations, variables
//! with `α_k ≈ 0, G_k > G_down` or `α_k ≈ u_k, G_k < G_up` are deactivated,
//! making each subsequent iteration O(active) instead of O(ñ). The
//! heuristic can be wrong, so the solver never declares convergence from a
//! shrunk state: on any stop condition it reconstructs the gradients of the
//! shrunk variables (`G_k = 2 Σ_{α_j>0} α_j K_jk`), reactivates everything,
//! and re-checks the KKT conditions over the *full* set — only a clean
//! full-set pass terminates.
//!
//! Cost: O(active-set · ñ) gradient work plus O(ñ·d) per distance-row cache
//! miss. With DBSVEC's small ν (few support vectors) the active set is tiny,
//! which is what makes per-expansion SVDD training effectively linear in ñ
//! (paper §IV-D).

use dbsvec_geometry::{PointId, PointSet};

use crate::cache::{DistCacheStats, DistanceRowCache};
use crate::incremental::SolverSession;
use crate::kernel::GaussianKernel;
use crate::model::{SolveDiagnostics, SvddModel, ALPHA_TOL};
use crate::params::nu_to_c;

/// Solver configuration.
#[derive(Clone, Copy, Debug)]
pub struct SmoOptions {
    /// Stop when the maximum KKT violation `G_j − G_i` drops below this.
    /// Gradient entries live in `[0, 2]` for a Gaussian kernel, so the
    /// default `1e-3` is a relative accuracy of about 5e-4 — DBSVEC only
    /// needs the *identity* of the boundary points, not polished
    /// multipliers, and the looser stop roughly halves SMO iterations.
    pub tolerance: f64,
    /// Hard iteration cap; `0` means
    /// [`SmoOptions::MAX_ITERATIONS_PER_POINT`]` · ñ + `
    /// [`SmoOptions::MAX_ITERATIONS_FLOOR`]. Hitting the cap is surfaced as
    /// `converged == false` in [`SolveDiagnostics`], never silently.
    pub max_iterations: usize,
    /// Distance-row cache capacity in rows; `0` means `min(ñ, 512)`. With a
    /// [`SolverSession`] attached the capacity only ever grows.
    pub cache_rows: usize,
    /// Worker threads for batched distance-row computation (the initial
    /// gradient rows and, on large targets, the per-iteration working
    /// pair). `1` (the default) keeps the solver on the exact sequential
    /// code path; `0` means all available cores. The solution, iteration
    /// count, and cache statistics are bit-identical at every setting —
    /// threads only precompute rows, all accounting replays in order.
    pub threads: usize,
    /// Seed each solve from the session's previous multipliers (box
    /// projection + Σα = 1 repair) instead of a cold greedy fill. Only
    /// takes effect when a [`SolverSession`] with at least one completed
    /// solve is attached. Default `true`.
    pub warm_start: bool,
    /// Enable active-set shrinking (see module docs). Convergence is
    /// always validated by a full KKT re-scan, so the final accuracy is
    /// identical with or without it. Default `true`.
    pub shrinking: bool,
    /// Iterations between shrink passes; `0` means `min(ñ, 1000)` (the
    /// libsvm heuristic). Smaller values shrink more aggressively at the
    /// price of more reconstruction re-scans.
    pub shrink_interval: usize,
}

impl Default for SmoOptions {
    fn default() -> Self {
        Self {
            tolerance: 1e-3,
            max_iterations: 0,
            cache_rows: 0,
            threads: 1,
            warm_start: true,
            shrinking: true,
            shrink_interval: 0,
        }
    }
}

impl SmoOptions {
    /// Per-point factor of the default iteration cap. Exact pair
    /// optimization converges linearly, and observed solves take a few
    /// times the support-vector count, so 200·ñ is a generous margin — the
    /// cap exists to bound pathological inputs, not to tune accuracy.
    pub const MAX_ITERATIONS_PER_POINT: usize = 200;

    /// Additive floor of the default iteration cap, so tiny targets still
    /// get enough budget for slow tail convergence.
    pub const MAX_ITERATIONS_FLOOR: usize = 10_000;

    /// The effective iteration cap for a target of size `n`.
    pub fn resolve_max_iterations(&self, n: usize) -> usize {
        if self.max_iterations == 0 {
            Self::MAX_ITERATIONS_PER_POINT * n + Self::MAX_ITERATIONS_FLOOR
        } else {
            self.max_iterations
        }
    }

    /// The effective worker count: `0` resolves to the machine's available
    /// parallelism.
    pub fn resolve_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.threads
        }
    }

    fn resolve_shrink_interval(&self, n: usize) -> usize {
        if self.shrink_interval == 0 {
            n.clamp(1, 1000)
        } else {
            self.shrink_interval.max(1)
        }
    }
}

/// A weighted SVDD training problem over a subset of a [`PointSet`].
pub struct SvddProblem<'a> {
    points: &'a PointSet,
    ids: &'a [PointId],
    kernel: GaussianKernel,
    upper: Vec<f64>,
    options: SmoOptions,
    session: Option<&'a mut SolverSession>,
}

impl<'a> SvddProblem<'a> {
    /// Creates a problem over `ids` with uniform unit bounds (`C = 1`,
    /// i.e. ν = 1/ñ — the `DBSVEC_min` setting). Use [`SvddProblem::with_nu`]
    /// or [`SvddProblem::with_bounds`] to change them.
    ///
    /// # Panics
    ///
    /// Panics if `ids` is empty.
    pub fn new(points: &'a PointSet, ids: &'a [PointId], kernel: GaussianKernel) -> Self {
        assert!(!ids.is_empty(), "SVDD requires a nonempty target set");
        Self {
            points,
            ids,
            kernel,
            upper: vec![1.0; ids.len()],
            options: SmoOptions::default(),
            session: None,
        }
    }

    /// Sets uniform bounds from a penalty fraction ν: `u_i = C = 1/(ν·ñ)`.
    pub fn with_nu(mut self, nu: f64) -> Self {
        let c = nu_to_c(nu, self.ids.len());
        self.upper = vec![c; self.ids.len()];
        self
    }

    /// Sets per-point bounds `u_i = ω_i C` (the weighted dual of Eq. 11).
    ///
    /// # Panics
    ///
    /// Panics if the bound vector has the wrong length, contains
    /// non-positive entries, or sums below 1 (infeasible simplex).
    pub fn with_bounds(mut self, upper: Vec<f64>) -> Self {
        assert_eq!(upper.len(), self.ids.len(), "one bound per target point");
        assert!(
            upper.iter().all(|&u| u > 0.0 && u.is_finite()),
            "bounds must be positive"
        );
        let total: f64 = upper.iter().sum();
        assert!(
            total >= 1.0 - 1e-9,
            "Σ upper bounds = {total} < 1: dual infeasible"
        );
        self.upper = upper;
        self
    }

    /// Overrides solver options.
    pub fn with_options(mut self, options: SmoOptions) -> Self {
        self.options = options;
        self
    }

    /// Attaches a cross-round [`SolverSession`]: the σ-invariant distance
    /// rows persist across solves, and (with [`SmoOptions::warm_start`])
    /// the previous solve's α seeds this one.
    pub fn with_session(mut self, session: &'a mut SolverSession) -> Self {
        self.session = Some(session);
        self
    }

    /// Runs SMO to convergence and returns the trained model.
    pub fn solve(self) -> SvddModel {
        let Self {
            points,
            ids,
            kernel,
            upper,
            options,
            session,
        } = self;
        match session {
            Some(session) => solve_in_session(points, ids, kernel, upper, options, session),
            // A throwaway session makes the sessionless call exactly the
            // first (cold) solve of a session — one code path to test.
            None => solve_in_session(
                points,
                ids,
                kernel,
                upper,
                options,
                &mut SolverSession::new(),
            ),
        }
    }
}

/// Rebuilds `G_k = 2 Σ_{α_j>0} α_j K_jk` for every inactive `k` from the
/// cached distance rows of the nonzero multipliers. Rows may be precomputed
/// across threads; accumulation runs here in ascending source order.
#[allow(clippy::too_many_arguments)]
fn reconstruct_shrunk_gradients(
    points: &PointSet,
    kernel: GaussianKernel,
    cache: &mut DistanceRowCache,
    uidx: &[usize],
    alpha: &[f64],
    active: &[bool],
    grad: &mut [f64],
    threads: usize,
) {
    let shrunk: Vec<usize> = (0..alpha.len()).filter(|&k| !active[k]).collect();
    if shrunk.is_empty() {
        return;
    }
    for &k in &shrunk {
        grad[k] = 0.0;
    }
    let sources: Vec<usize> = (0..alpha.len()).filter(|&t| alpha[t] > 0.0).collect();
    let rows: Vec<usize> = sources.iter().map(|&t| uidx[t]).collect();
    cache.for_rows(points, &rows, threads, |pos, row| {
        let a2 = 2.0 * alpha[sources[pos]];
        for &k in &shrunk {
            grad[k] += a2 * kernel.eval_sq_dist(row[uidx[k]]);
        }
    });
}

fn solve_in_session(
    points: &PointSet,
    ids: &[PointId],
    kernel: GaussianKernel,
    upper: Vec<f64>,
    options: SmoOptions,
    session: &mut SolverSession,
) -> SvddModel {
    let n = ids.len();
    let max_iter = options.resolve_max_iterations(n);
    let cache_rows = if options.cache_rows == 0 {
        n.min(512)
    } else {
        options.cache_rows
    };
    let threads = options.resolve_threads();

    let stats_before = session.cache.stats();
    session.cache.ensure_capacity(cache_rows);
    // Universe indices of this round's targets (distance rows are keyed by
    // PointId, so rows cached in earlier rounds stay valid under new σ).
    let uidx = session.cache.register(ids);
    session.alpha.resize(session.cache.universe_len(), 0.0);

    let warm = options.warm_start && session.solves > 0;
    let mut alpha = vec![0.0; n];
    if warm {
        // ---- Warm start: refill the simplex greedily over the previous
        // round's support set, strongest multiplier first, each point
        // capped by its new box. The *support* (which points carried mass)
        // transfers across rounds; the exact values do not, because σ is
        // re-resolved every round and shifts the whole Gram matrix under
        // the old optimum — so the init borrows the support and lets the
        // solver place the values.
        let mut support: Vec<(usize, f64)> = uidx
            .iter()
            .enumerate()
            .filter_map(|(t, &u)| {
                let a = session.alpha[u].clamp(0.0, upper[t]);
                (a > 0.0).then_some((t, a))
            })
            .collect();
        support.sort_by(|x, y| y.1.total_cmp(&x.1).then(x.0.cmp(&y.0)));
        let mut remaining = 1.0;
        for &(t, _) in &support {
            let take = upper[t].min(remaining);
            alpha[t] = take;
            remaining -= take;
            if remaining <= 0.0 {
                break;
            }
        }
        // Survivors' caps could not absorb the whole simplex (heavy
        // eviction or shrunk bounds): top up in index order like a cold fill.
        if remaining > 0.0 {
            for (a, &u) in alpha.iter_mut().zip(&upper) {
                let take = (u - *a).min(remaining).max(0.0);
                *a += take;
                remaining -= take;
                if remaining <= 0.0 {
                    break;
                }
            }
        }
        debug_assert!(remaining <= 1e-9, "with_bounds guarantees feasibility");
    } else {
        // ---- Cold start: greedily fill bounds until Σα = 1.
        let mut remaining = 1.0;
        for (a, &u) in alpha.iter_mut().zip(&upper) {
            let take = u.min(remaining);
            *a = take;
            remaining -= take;
            if remaining <= 0.0 {
                break;
            }
        }
        debug_assert!(remaining <= 1e-9, "with_bounds guarantees feasibility");
    }

    // ---- Initial gradient G = 2Kα from the rows of nonzero multipliers.
    // The rows are independent, so `for_rows` may precompute them across
    // threads; the accumulation below runs on this thread in ascending
    // index order either way, keeping the float association identical.
    let mut grad = vec![0.0; n];
    let seeded: Vec<usize> = (0..n).filter(|&t| alpha[t] > 0.0).collect();
    let seed_rows: Vec<usize> = seeded.iter().map(|&t| uidx[t]).collect();
    session
        .cache
        .for_rows(points, &seed_rows, threads, |pos, row| {
            let a2 = 2.0 * alpha[seeded[pos]];
            for (g, &u) in grad.iter_mut().zip(&uidx) {
                *g += a2 * kernel.eval_sq_dist(row[u]);
            }
        });

    // ---- Main loop.
    let shrinking = options.shrinking && n > 1;
    let shrink_interval = options.resolve_shrink_interval(n);
    let mut active = vec![true; n];
    let mut n_active = n;
    let mut until_shrink = shrink_interval;
    let mut iterations = 0usize;
    let mut converged = false;
    let mut initial_kkt_violation = 0.0f64;
    let mut first_selection = true;
    let mut shrunk_peak = 0usize;
    let mut rescans = 0usize;

    loop {
        // Working-set selection by maximum KKT violation over the active set.
        let mut i_up = usize::MAX; // candidate to increase
        let mut g_up = f64::INFINITY;
        let mut j_down = usize::MAX; // candidate to decrease
        let mut g_down = f64::NEG_INFINITY;
        for k in 0..n {
            if !active[k] {
                continue;
            }
            if alpha[k] < upper[k] - ALPHA_TOL && grad[k] < g_up {
                g_up = grad[k];
                i_up = k;
            }
            if alpha[k] > ALPHA_TOL && grad[k] > g_down {
                g_down = grad[k];
                j_down = k;
            }
        }
        if first_selection {
            first_selection = false;
            if i_up != usize::MAX && j_down != usize::MAX && i_up != j_down {
                initial_kkt_violation = (g_down - g_up).max(0.0);
            }
        }

        let optimal = i_up == usize::MAX
            || j_down == usize::MAX
            || i_up == j_down
            || g_down - g_up < options.tolerance;
        if optimal {
            if n_active < n {
                // The active set looks converged, but shrinking is a
                // heuristic: reconstruct the shrunk gradients and re-check
                // the KKT conditions over the full variable set.
                reconstruct_shrunk_gradients(
                    points,
                    kernel,
                    &mut session.cache,
                    &uidx,
                    &alpha,
                    &active,
                    &mut grad,
                    threads,
                );
                active.fill(true);
                n_active = n;
                until_shrink = shrink_interval;
                rescans += 1;
                continue;
            }
            converged = true;
            break;
        }
        if iterations >= max_iter {
            break; // budget exhausted: reported via `converged == false`
        }

        let i = i_up;
        // Second-order selection of j (libsvm's WSS2): among the variables
        // that can decrease, maximize the guaranteed objective decrease
        // (G_j − G_i)²/η_ij instead of the bare violation G_j. First-order
        // selection crawls when the iterate is near-optimal everywhere —
        // exactly the regime a warm start puts the solver in — because the
        // most violating pair can have near-parallel images (η ≈ 0) and
        // admit only a tiny step. Row i is needed for the η's and is
        // reused by the gradient update below.
        let row_i: Vec<f64> = session.cache.row(points, uidx[i]).to_vec();
        let mut j = j_down;
        let mut best_gain = f64::NEG_INFINITY;
        for k in 0..n {
            if !active[k] || k == i || alpha[k] <= ALPHA_TOL {
                continue;
            }
            let diff = grad[k] - g_up;
            if diff <= 0.0 {
                continue;
            }
            let eta_ik = (2.0 * (1.0 - kernel.eval_sq_dist(row_i[uidx[k]]))).max(1e-12);
            let gain = diff * diff / eta_ik;
            if gain > best_gain {
                best_gain = gain;
                j = k;
            }
        }
        let k_ij = kernel.eval_sq_dist(row_i[uidx[j]]);
        let eta = 2.0 * (1.0 - k_ij); // K_ii + K_jj − 2K_ij for Gaussian
        let max_step = (upper[i] - alpha[i]).min(alpha[j]);
        let delta = if eta > 1e-12 {
            ((grad[j] - g_up) / (2.0 * eta)).min(max_step)
        } else {
            // Coincident points: the objective is linear along the
            // direction; move as far as the box allows.
            max_step
        };
        if delta <= 0.0 {
            if n_active < n {
                reconstruct_shrunk_gradients(
                    points,
                    kernel,
                    &mut session.cache,
                    &uidx,
                    &alpha,
                    &active,
                    &mut grad,
                    threads,
                );
                active.fill(true);
                n_active = n;
                until_shrink = shrink_interval;
                rescans += 1;
                continue;
            }
            converged = true; // numerically stuck; current iterate is KKT-ε optimal
            break;
        }

        alpha[i] += delta;
        alpha[j] -= delta;

        // Gradient maintenance over the active set with the two working
        // rows. The kernel values come from σ-invariant squared distances,
        // so only the O(active) `exp` calls below depend on this round's σ.
        {
            let row_j = session.cache.row(points, uidx[j]);
            let two_delta = 2.0 * delta;
            for k in 0..n {
                if !active[k] {
                    continue;
                }
                let ki = kernel.eval_sq_dist(row_i[uidx[k]]);
                let kj = kernel.eval_sq_dist(row_j[uidx[k]]);
                grad[k] += two_delta * (ki - kj);
            }
        }
        iterations += 1;

        if shrinking {
            until_shrink -= 1;
            if until_shrink == 0 {
                until_shrink = shrink_interval;
                // Deactivate variables pinned at a bound whose gradient
                // sign says they want to stay there (relative to this
                // iteration's violating pair).
                for k in 0..n {
                    if !active[k] {
                        continue;
                    }
                    let at_lower = alpha[k] <= ALPHA_TOL;
                    let at_upper = alpha[k] >= upper[k] - ALPHA_TOL;
                    if (at_lower && grad[k] > g_down) || (at_upper && grad[k] < g_up) {
                        active[k] = false;
                        n_active -= 1;
                    }
                }
                shrunk_peak = shrunk_peak.max(n - n_active);
            }
        }
    }

    // Budget exhaustion can leave shrunk variables with stale gradients;
    // R² and αᵀKα below need the real ones.
    if n_active < n {
        reconstruct_shrunk_gradients(
            points,
            kernel,
            &mut session.cache,
            &uidx,
            &alpha,
            &active,
            &mut grad,
            threads,
        );
    }

    // ---- Radius and constants.
    let alpha_k_alpha: f64 = alpha.iter().zip(&grad).map(|(&a, &g)| a * g).sum::<f64>() / 2.0;
    let decision_at = |k: usize| 1.0 - grad[k] + alpha_k_alpha;

    // KKT: every point below its cap satisfies F ≤ R² (zeros strictly
    // inside, free SVs exactly on the sphere), so their maximum is the
    // tightest radius that keeps the ε-optimal iterate KKT-consistent —
    // averaging free SVs instead would leave up to half of them outside
    // the sphere by the solver tolerance. Fall back to the bounded SVs'
    // bracket when everything sits at a cap.
    let mut max_inside = f64::NEG_INFINITY; // over α < u points (F <= R²)
    let mut min_outside = f64::INFINITY; // over bounded SVs (F >= R²)
    #[allow(clippy::needless_range_loop)] // k indexes alpha, upper, and grad together
    for k in 0..n {
        let f = decision_at(k);
        if alpha[k] >= upper[k] - ALPHA_TOL {
            min_outside = min_outside.min(f);
        } else {
            max_inside = max_inside.max(f);
        }
    }
    let r_sq = if max_inside.is_finite() {
        max_inside
    } else if min_outside.is_finite() {
        min_outside
    } else {
        0.0
    };

    // ---- Persist this round's α for the next warm start.
    for (t, &u) in uidx.iter().enumerate() {
        session.alpha[u] = alpha[t];
    }
    session.solves += 1;

    let after = session.cache.stats();
    let diag = SolveDiagnostics {
        iterations,
        converged,
        warm_started: warm,
        initial_kkt_violation,
        shrunk_peak,
        rescans,
        cache: DistCacheStats {
            hits: after.hits - stats_before.hits,
            misses: after.misses - stats_before.misses,
            evictions: after.evictions - stats_before.evictions,
            extensions: after.extensions - stats_before.extensions,
        },
    };

    SvddModel::new(
        ids.to_vec(),
        alpha,
        upper,
        kernel,
        r_sq,
        alpha_k_alpha,
        diag,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SvType;
    use dbsvec_geometry::rng::SplitMix64;

    fn ring(n: usize, radius: f64) -> (PointSet, Vec<PointId>) {
        let mut ps = PointSet::new(2);
        for i in 0..n {
            let a = i as f64 / n as f64 * std::f64::consts::TAU;
            ps.push(&[radius * a.cos(), radius * a.sin()]);
        }
        (ps, (0..n as u32).collect())
    }

    fn gaussian_blob(n: usize, seed: u64) -> (PointSet, Vec<PointId>) {
        let mut rng = SplitMix64::new(seed);
        let mut ps = PointSet::new(2);
        for _ in 0..n {
            // Irwin–Hall approximate normal.
            let x: f64 = (0..12).map(|_| rng.next_f64()).sum::<f64>() - 6.0;
            let y: f64 = (0..12).map(|_| rng.next_f64()).sum::<f64>() - 6.0;
            ps.push(&[x, y]);
        }
        (ps, (0..n as u32).collect())
    }

    /// Recomputes the gradient from scratch and returns `G_down − G_up`.
    fn kkt_violation(ps: &PointSet, ids: &[PointId], model: &SvddModel) -> f64 {
        let n = ids.len();
        let kernel = model.kernel();
        let alpha = model.alphas();
        let mut grad = vec![0.0; n];
        for i in 0..n {
            for j in 0..n {
                grad[i] += 2.0 * alpha[j] * kernel.eval(ps.point(ids[i]), ps.point(ids[j]));
            }
        }
        let mut g_up = f64::INFINITY;
        let mut g_down = f64::NEG_INFINITY;
        for (k, &g) in grad.iter().enumerate() {
            match model.sv_type(k) {
                SvType::Interior => g_up = g_up.min(g),
                SvType::Bounded => g_down = g_down.max(g),
                SvType::Normal => {
                    g_up = g_up.min(g);
                    g_down = g_down.max(g);
                }
            }
        }
        g_down - g_up
    }

    #[test]
    fn alphas_form_a_simplex_point() {
        let (ps, ids) = gaussian_blob(120, 5);
        let model = SvddProblem::new(&ps, &ids, GaussianKernel::from_width(2.0))
            .with_nu(0.1)
            .solve();
        let sum: f64 = model.alphas().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "Σα = {sum}");
        assert!(model.alphas().iter().all(|&a| (-1e-12..=1.0).contains(&a)));
    }

    #[test]
    fn two_symmetric_points_split_mass_evenly() {
        let ps = PointSet::from_rows(&[vec![-1.0], vec![1.0]]);
        let ids = [0, 1];
        let model = SvddProblem::new(&ps, &ids, GaussianKernel::from_width(1.0))
            .with_nu(0.5)
            .solve();
        assert!((model.alphas()[0] - 0.5).abs() < 1e-6);
        assert!((model.alphas()[1] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn kkt_conditions_hold_at_solution() {
        let (ps, ids) = gaussian_blob(150, 7);
        let kernel = GaussianKernel::from_width(1.5);
        let model = SvddProblem::new(&ps, &ids, kernel).with_nu(0.2).solve();
        // Recompute the gradient from scratch and check the violation.
        let n = ids.len();
        let alpha = model.alphas();
        let mut grad = vec![0.0; n];
        for i in 0..n {
            for j in 0..n {
                grad[i] += 2.0 * alpha[j] * kernel.eval(ps.point(ids[i]), ps.point(ids[j]));
            }
        }
        let c = 1.0 / (0.2 * n as f64);
        let g_up = (0..n)
            .filter(|&k| alpha[k] < c - 1e-9)
            .map(|k| grad[k])
            .fold(f64::INFINITY, f64::min);
        let g_down = (0..n)
            .filter(|&k| alpha[k] > 1e-9)
            .map(|k| grad[k])
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            g_down - g_up < 1e-3,
            "KKT violation {} too large",
            g_down - g_up
        );
    }

    #[test]
    fn support_vectors_lie_on_the_boundary_of_a_blob() {
        let (ps, ids) = gaussian_blob(200, 11);
        let model = SvddProblem::new(&ps, &ids, GaussianKernel::from_width(2.0))
            .with_nu(0.1)
            .solve();
        let centroid = ps.centroid().unwrap();
        let mean_dist: f64 = ids
            .iter()
            .map(|&id| dbsvec_geometry::euclidean(ps.point(id), &centroid))
            .sum::<f64>()
            / ids.len() as f64;
        let svs = model.support_vectors();
        assert!(!svs.is_empty());
        let sv_mean_dist: f64 = svs
            .iter()
            .map(|&id| dbsvec_geometry::euclidean(ps.point(id), &centroid))
            .sum::<f64>()
            / svs.len() as f64;
        assert!(
            sv_mean_dist > mean_dist,
            "support vectors ({sv_mean_dist:.3}) should be farther out than average ({mean_dist:.3})"
        );
    }

    #[test]
    fn decision_separates_inside_from_far_outside() {
        let (ps, ids) = ring(48, 1.0);
        let model = SvddProblem::new(&ps, &ids, GaussianKernel::from_width(1.0))
            .with_nu(0.5)
            .solve();
        let inside = model.decision(&ps, &[0.0, 0.0]);
        let on_data = model.decision(&ps, &[1.0, 0.0]);
        let outside = model.decision(&ps, &[5.0, 5.0]);
        assert!(inside < outside);
        assert!(on_data < outside);
        assert!(model.contains(&ps, &[1.0, 0.0]));
        assert!(!model.contains(&ps, &[5.0, 5.0]));
    }

    #[test]
    fn nu_controls_support_vector_count() {
        let (ps, ids) = gaussian_blob(200, 13);
        let kernel = GaussianKernel::from_width(2.0);
        let few = SvddProblem::new(&ps, &ids, kernel).with_nu(0.05).solve();
        let many = SvddProblem::new(&ps, &ids, kernel).with_nu(0.5).solve();
        assert!(
            few.num_support_vectors() < many.num_support_vectors(),
            "ν=0.05 gave {} SVs, ν=0.5 gave {}",
            few.num_support_vectors(),
            many.num_support_vectors()
        );
        // ν lower-bounds the SV fraction (Schölkopf & Smola).
        assert!(many.num_support_vectors() as f64 >= 0.5 * 200.0 * 0.9);
    }

    #[test]
    fn weighted_bounds_are_respected() {
        let (ps, ids) = gaussian_blob(60, 17);
        let mut upper = vec![0.5; 60];
        upper[0] = 1e-6; // effectively forbid point 0
        let model = SvddProblem::new(&ps, &ids, GaussianKernel::from_width(2.0))
            .with_bounds(upper)
            .solve();
        assert!(model.alphas()[0] <= 1e-6 + 1e-12);
    }

    #[test]
    fn single_point_target_is_trivial() {
        let ps = PointSet::from_rows(&[vec![3.0, 4.0]]);
        let model = SvddProblem::new(&ps, &[0], GaussianKernel::from_width(1.0)).solve();
        assert_eq!(model.alphas(), &[1.0]);
        assert_eq!(model.support_vectors(), vec![0]);
        assert!(model.contains(&ps, &[3.0, 4.0]));
    }

    #[test]
    fn duplicate_points_do_not_stall() {
        let ps = PointSet::from_rows(&vec![vec![1.0, 1.0]; 30]);
        let ids: Vec<PointId> = (0..30).collect();
        let model = SvddProblem::new(&ps, &ids, GaussianKernel::from_width(1.0))
            .with_nu(0.3)
            .solve();
        let sum: f64 = model.alphas().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_across_runs() {
        let (ps, ids) = gaussian_blob(100, 23);
        let kernel = GaussianKernel::from_width(1.7);
        let a = SvddProblem::new(&ps, &ids, kernel).with_nu(0.15).solve();
        let b = SvddProblem::new(&ps, &ids, kernel).with_nu(0.15).solve();
        assert_eq!(a.alphas(), b.alphas());
        assert_eq!(a.radius_sq(), b.radius_sq());
    }

    #[test]
    fn threads_do_not_change_the_solution() {
        // ν = 0.3 seeds ~60 nonzero multipliers, so the batched initial
        // gradient genuinely fans out; the solution must stay bit-identical.
        let (ps, ids) = gaussian_blob(200, 41);
        let kernel = GaussianKernel::from_width(1.6);
        let solve = |threads: usize| {
            let options = SmoOptions {
                threads,
                ..SmoOptions::default()
            };
            SvddProblem::new(&ps, &ids, kernel)
                .with_nu(0.3)
                .with_options(options)
                .solve()
        };
        let base = solve(1);
        for threads in [2, 4, 8] {
            let got = solve(threads);
            assert_eq!(base.alphas(), got.alphas(), "{threads} threads");
            assert_eq!(base.iterations(), got.iterations(), "{threads} threads");
            assert_eq!(base.cache_stats(), got.cache_stats(), "{threads} threads");
            assert_eq!(base.radius_sq(), got.radius_sq(), "{threads} threads");
            assert_eq!(
                base.support_vectors(),
                got.support_vectors(),
                "{threads} threads"
            );
        }
    }

    #[test]
    fn warm_sessions_are_thread_invariant_too() {
        // The warm path adds session-cache reuse and gradient
        // reconstruction on top of the cold path; trace equality across
        // thread counts must survive all of it.
        let (ps, ids) = gaussian_blob(180, 43);
        let solve_rounds = |threads: usize| {
            let options = SmoOptions {
                threads,
                shrink_interval: 7, // force shrink/rescan traffic
                ..SmoOptions::default()
            };
            let mut session = SolverSession::new();
            let mut out = Vec::new();
            for (end, sigma) in [(120, 1.4), (150, 1.6), (180, 1.9)] {
                let model = SvddProblem::new(&ps, &ids[..end], GaussianKernel::from_width(sigma))
                    .with_nu(0.2)
                    .with_options(options)
                    .with_session(&mut session)
                    .solve();
                out.push((
                    model.alphas().to_vec(),
                    model.iterations(),
                    model.diagnostics().cache,
                    model.diagnostics().rescans,
                ));
            }
            out
        };
        let base = solve_rounds(1);
        for threads in [2, 4, 8] {
            assert_eq!(base, solve_rounds(threads), "{threads} threads");
        }
    }

    #[test]
    fn zero_threads_resolves_to_available_parallelism() {
        let options = SmoOptions {
            threads: 0,
            ..SmoOptions::default()
        };
        assert!(options.resolve_threads() >= 1);
        assert_eq!(SmoOptions::default().resolve_threads(), 1);
    }

    #[test]
    fn sv_types_partition_correctly() {
        let (ps, ids) = gaussian_blob(150, 29);
        let model = SvddProblem::new(&ps, &ids, GaussianKernel::from_width(2.0))
            .with_nu(0.2)
            .solve();
        let mut interior = 0;
        let mut normal = 0;
        let mut bounded = 0;
        for i in 0..ids.len() {
            match model.sv_type(i) {
                SvType::Interior => interior += 1,
                SvType::Normal => normal += 1,
                SvType::Bounded => bounded += 1,
            }
        }
        assert_eq!(interior + normal + bounded, ids.len());
        assert_eq!(normal + bounded, model.num_support_vectors());
        assert!(interior > 0, "most blob points should be interior");
    }

    #[test]
    fn solver_objective_not_worse_than_uniform() {
        let (ps, ids) = gaussian_blob(80, 31);
        let kernel = GaussianKernel::from_width(2.0);
        let model = SvddProblem::new(&ps, &ids, kernel).with_nu(0.5).solve();
        let objective = |alpha: &[f64]| {
            let mut f = 0.0;
            for i in 0..ids.len() {
                for j in 0..ids.len() {
                    f += alpha[i] * alpha[j] * kernel.eval(ps.point(ids[i]), ps.point(ids[j]));
                }
            }
            f
        };
        let uniform = vec![1.0 / ids.len() as f64; ids.len()];
        assert!(objective(model.alphas()) <= objective(&uniform) + 1e-9);
    }

    #[test]
    fn first_session_solve_matches_sessionless_solve_exactly() {
        let (ps, ids) = gaussian_blob(100, 37);
        let kernel = GaussianKernel::from_width(1.8);
        let plain = SvddProblem::new(&ps, &ids, kernel).with_nu(0.2).solve();
        let mut session = SolverSession::new();
        let first = SvddProblem::new(&ps, &ids, kernel)
            .with_nu(0.2)
            .with_session(&mut session)
            .solve();
        assert_eq!(plain.alphas(), first.alphas());
        assert_eq!(plain.iterations(), first.iterations());
        assert_eq!(plain.radius_sq(), first.radius_sq());
        assert!(!first.diagnostics().warm_started);
        assert_eq!(session.solves(), 1);
    }

    #[test]
    fn warm_start_reduces_iterations_on_regrowth() {
        // Simulate expansion rounds: the target grows, σ changes every
        // round, and the warm path should finish in fewer total iterations
        // than cold-starting each round.
        let (ps, ids) = gaussian_blob(240, 41);
        let rounds = [(160, 1.5), (200, 1.7), (240, 1.9)];
        let mut session = SolverSession::new();
        let mut warm_total = 0usize;
        let mut cold_total = 0usize;
        for (round, &(end, sigma)) in rounds.iter().enumerate() {
            let kernel = GaussianKernel::from_width(sigma);
            let warm = SvddProblem::new(&ps, &ids[..end], kernel)
                .with_nu(0.2)
                .with_session(&mut session)
                .solve();
            let cold = SvddProblem::new(&ps, &ids[..end], kernel)
                .with_nu(0.2)
                .solve();
            assert!(warm.converged() && cold.converged());
            assert_eq!(warm.diagnostics().warm_started, round > 0);
            if round > 0 {
                // The seed was near-optimal, so it must start closer to
                // KKT than a cold uniform-ish fill would.
                assert!(
                    warm.diagnostics().initial_kkt_violation
                        < cold.diagnostics().initial_kkt_violation,
                    "round {round}"
                );
            }
            assert!(
                kkt_violation(&ps, &ids[..end], &warm) < 1e-3,
                "warm round {round} violates KKT"
            );
            warm_total += warm.iterations();
            cold_total += cold.iterations();
        }
        assert!(
            warm_total < cold_total,
            "warm {warm_total} iterations vs cold {cold_total}"
        );
    }

    #[test]
    fn session_cache_rows_survive_sigma_changes() {
        // Same target, different σ: every distance row is already cached,
        // so the second solve must not miss at all.
        let (ps, ids) = gaussian_blob(80, 53);
        let mut session = SolverSession::new();
        let a = SvddProblem::new(&ps, &ids, GaussianKernel::from_width(1.2))
            .with_nu(0.3)
            .with_session(&mut session)
            .solve();
        let b = SvddProblem::new(&ps, &ids, GaussianKernel::from_width(2.4))
            .with_nu(0.3)
            .with_session(&mut session)
            .solve();
        assert!(a.diagnostics().cache.misses > 0);
        assert_eq!(b.diagnostics().cache.misses, 0, "σ change must not evict");
        assert!(b.diagnostics().cache.hits > 0);
        assert!(kkt_violation(&ps, &ids, &b) < 1e-3);
    }

    #[test]
    fn shrinking_shrinks_and_stays_correct() {
        let (ps, ids) = gaussian_blob(150, 59);
        let kernel = GaussianKernel::from_width(1.5);
        let aggressive = SmoOptions {
            shrink_interval: 5,
            ..SmoOptions::default()
        };
        let no_shrink = SmoOptions {
            shrinking: false,
            ..SmoOptions::default()
        };
        let shrunk = SvddProblem::new(&ps, &ids, kernel)
            .with_nu(0.1)
            .with_options(aggressive)
            .solve();
        let full = SvddProblem::new(&ps, &ids, kernel)
            .with_nu(0.1)
            .with_options(no_shrink)
            .solve();
        assert!(shrunk.diagnostics().shrunk_peak > 0, "never shrank");
        assert!(
            shrunk.diagnostics().rescans > 0,
            "converged without re-scan"
        );
        assert_eq!(full.diagnostics().shrunk_peak, 0);
        // Shrinking changes the trajectory, not the quality: both end
        // within the same KKT tolerance and with near-identical objectives.
        assert!(kkt_violation(&ps, &ids, &shrunk) < 1e-3);
        assert!(kkt_violation(&ps, &ids, &full) < 1e-3);
        let objective = |m: &SvddModel| m.alpha_k_alpha();
        assert!((objective(&shrunk) - objective(&full)).abs() < 1e-3);
    }

    #[test]
    fn exhausted_budget_is_reported_not_silent() {
        let (ps, ids) = gaussian_blob(100, 61);
        let starved = SmoOptions {
            max_iterations: 1,
            ..SmoOptions::default()
        };
        let model = SvddProblem::new(&ps, &ids, GaussianKernel::from_width(1.5))
            .with_nu(0.2)
            .with_options(starved)
            .solve();
        assert!(!model.converged());
        assert_eq!(model.iterations(), 1);
        assert!(model.radius_sq().is_finite());
        assert_eq!(SmoOptions::default().resolve_max_iterations(100), 30_000);
    }
}
