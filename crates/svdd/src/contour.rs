//! 2-D decision-boundary extraction for trained SVDD models.
//!
//! The paper's Fig. 3 draws "the boundary formed by the high-dimensional
//! sphere mapping back to the original space" as a dashed curve around the
//! expanding sub-cluster. This module recovers that curve for 2-D data:
//! the level set `F(x) = R²` of the discrimination function (Eq. 12),
//! traced with the marching-squares algorithm over a regular grid of
//! decision values. Each grid edge crossed by the level set contributes a
//! linearly interpolated segment endpoint.
//!
//! The output is a set of line segments (not chained polylines): exactly
//! what a plot overlay needs, with no topology bookkeeping to get wrong on
//! saddle cells.

use dbsvec_geometry::PointSet;

use crate::model::SvddModel;

/// One boundary line segment in data coordinates.
pub type Segment = [[f64; 2]; 2];

/// Extracts the `F(x) = R²` level set of `model` inside the rectangle
/// `[min, max]`, sampled on a `resolution × resolution` grid.
///
/// Larger `resolution` traces tighter curves at quadratic cost (one
/// decision-function evaluation per grid vertex, each O(#SV)).
///
/// # Panics
///
/// Panics unless the model's points are 2-D, `resolution >= 2`, and the
/// rectangle is non-degenerate.
pub fn decision_boundary_2d(
    model: &SvddModel,
    points: &PointSet,
    min: [f64; 2],
    max: [f64; 2],
    resolution: usize,
) -> Vec<Segment> {
    assert_eq!(points.dims(), 2, "boundary extraction requires 2-D data");
    assert!(resolution >= 2, "need at least a 2x2 grid");
    assert!(min[0] < max[0] && min[1] < max[1], "degenerate rectangle");

    let level = model.radius_sq();
    let step_x = (max[0] - min[0]) / (resolution - 1) as f64;
    let step_y = (max[1] - min[1]) / (resolution - 1) as f64;

    // Sample the decision function on the grid.
    let mut values = vec![0.0; resolution * resolution];
    for gy in 0..resolution {
        for gx in 0..resolution {
            let x = min[0] + gx as f64 * step_x;
            let y = min[1] + gy as f64 * step_y;
            values[gy * resolution + gx] = model.decision(points, &[x, y]) - level;
        }
    }

    // Marching squares: per cell, connect sign-change edge crossings.
    let mut segments = Vec::new();
    for gy in 0..resolution - 1 {
        for gx in 0..resolution - 1 {
            let v = [
                values[gy * resolution + gx],           // bottom-left  (0)
                values[gy * resolution + gx + 1],       // bottom-right (1)
                values[(gy + 1) * resolution + gx + 1], // top-right    (2)
                values[(gy + 1) * resolution + gx],     // top-left     (3)
            ];
            let x0 = min[0] + gx as f64 * step_x;
            let y0 = min[1] + gy as f64 * step_y;
            let corner = |i: usize| -> [f64; 2] {
                match i {
                    0 => [x0, y0],
                    1 => [x0 + step_x, y0],
                    2 => [x0 + step_x, y0 + step_y],
                    _ => [x0, y0 + step_y],
                }
            };

            // Interpolated crossing on the edge between corners a and b.
            let crossing = |a: usize, b: usize| -> [f64; 2] {
                let (va, vb) = (v[a], v[b]);
                let t = if (vb - va).abs() < f64::MIN_POSITIVE {
                    0.5
                } else {
                    (va / (va - vb)).clamp(0.0, 1.0)
                };
                let (pa, pb) = (corner(a), corner(b));
                [pa[0] + t * (pb[0] - pa[0]), pa[1] + t * (pb[1] - pa[1])]
            };

            // Collect crossed edges (sign change, treating 0 as inside).
            let inside = |x: f64| x <= 0.0;
            let edges = [(0usize, 1usize), (1, 2), (2, 3), (3, 0)];
            let mut crossings: Vec<[f64; 2]> = Vec::with_capacity(4);
            for &(a, b) in &edges {
                if inside(v[a]) != inside(v[b]) {
                    crossings.push(crossing(a, b));
                }
            }
            match crossings.len() {
                2 => segments.push([crossings[0], crossings[1]]),
                4 => {
                    // Saddle cell: resolve by the cell-center sign.
                    let center =
                        model.decision(points, &[x0 + 0.5 * step_x, y0 + 0.5 * step_y]) - level;
                    // Pair crossings so the curve separates the center
                    // consistently: (e01,e12)+(e23,e30) when the center is
                    // inside, else (e30,e01)+(e12,e23).
                    if inside(center) == inside(v[0]) {
                        segments.push([crossings[0], crossings[3]]);
                        segments.push([crossings[1], crossings[2]]);
                    } else {
                        segments.push([crossings[0], crossings[1]]);
                        segments.push([crossings[2], crossings[3]]);
                    }
                }
                _ => {}
            }
        }
    }
    segments
}

/// Convenience wrapper: extracts the boundary inside the bounding box of
/// the model's own target points, padded by `padding` on every side.
pub fn decision_boundary_around_targets(
    model: &SvddModel,
    points: &PointSet,
    padding: f64,
    resolution: usize,
) -> Vec<Segment> {
    let ids = model.target_ids();
    assert!(!ids.is_empty(), "model has no target points");
    let subset = points.subset(ids);
    let bbox = subset.bounding_box().expect("nonempty target set");
    decision_boundary_2d(
        model,
        points,
        [bbox.min()[0] - padding, bbox.min()[1] - padding],
        [bbox.max()[0] + padding, bbox.max()[1] + padding],
        resolution,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::GaussianKernel;
    use crate::smo::SvddProblem;
    use dbsvec_geometry::PointId;

    fn ring_model() -> (PointSet, SvddModel) {
        let mut ps = PointSet::new(2);
        for i in 0..64 {
            let a = i as f64 / 64.0 * std::f64::consts::TAU;
            ps.push(&[2.0 * a.cos(), 2.0 * a.sin()]);
        }
        let ids: Vec<PointId> = (0..64).collect();
        let model = SvddProblem::new(&ps, &ids, GaussianKernel::from_width(2.0))
            .with_nu(0.2)
            .solve();
        (ps, model)
    }

    #[test]
    fn boundary_encircles_the_ring() {
        let (ps, model) = ring_model();
        let segments = decision_boundary_2d(&model, &ps, [-4.0, -4.0], [4.0, 4.0], 60);
        assert!(!segments.is_empty(), "no boundary found");
        // Every boundary point should be near the data radius (2.0): the
        // described domain is an annulus-ish band around the ring.
        for seg in &segments {
            for p in seg {
                let r = (p[0] * p[0] + p[1] * p[1]).sqrt();
                assert!((0.5..=4.0).contains(&r), "boundary point at radius {r}");
            }
        }
        // The boundary must surround the data: crossings on all four sides.
        let (mut left, mut right, mut up, mut down) = (false, false, false, false);
        for seg in &segments {
            for p in seg {
                left |= p[0] < -1.0;
                right |= p[0] > 1.0;
                up |= p[1] > 1.0;
                down |= p[1] < -1.0;
            }
        }
        assert!(
            left && right && up && down,
            "boundary does not encircle the data"
        );
    }

    #[test]
    fn segments_sit_on_the_level_set() {
        let (ps, model) = ring_model();
        let segments = decision_boundary_2d(&model, &ps, [-4.0, -4.0], [4.0, 4.0], 80);
        let level = model.radius_sq();
        // Midpoints of interpolated segments should be near the level set;
        // tolerance reflects the grid resolution (8/80 = 0.1 spacing).
        let mut worst = 0.0f64;
        for seg in &segments {
            let mid = [(seg[0][0] + seg[1][0]) / 2.0, (seg[0][1] + seg[1][1]) / 2.0];
            let err = (model.decision(&ps, &mid) - level).abs();
            worst = worst.max(err);
        }
        assert!(worst < 0.1, "worst level-set error {worst}");
    }

    #[test]
    fn around_targets_wrapper_matches_explicit_box() {
        let (ps, model) = ring_model();
        let auto = decision_boundary_around_targets(&model, &ps, 2.0, 60);
        let explicit = decision_boundary_2d(&model, &ps, [-4.0, -4.0], [4.0, 4.0], 60);
        assert_eq!(auto.len(), explicit.len());
    }

    #[test]
    fn empty_when_level_set_outside_window() {
        let (ps, model) = ring_model();
        // A window deep inside the described domain has no boundary.
        let segments = decision_boundary_2d(&model, &ps, [-0.1, -0.1], [0.1, 0.1], 10);
        assert!(segments.is_empty());
    }

    #[test]
    #[should_panic(expected = "requires 2-D")]
    fn rejects_non_2d_points() {
        let ps = PointSet::from_rows(&[vec![0.0, 0.0, 0.0], vec![1.0, 1.0, 1.0]]);
        let ids: Vec<PointId> = vec![0, 1];
        let model = SvddProblem::new(&ps, &ids, GaussianKernel::from_width(1.0)).solve();
        let _ = decision_boundary_2d(&model, &ps, [0.0, 0.0], [1.0, 1.0], 10);
    }

    #[test]
    #[should_panic(expected = "degenerate rectangle")]
    fn rejects_degenerate_window() {
        let (ps, model) = ring_model();
        let _ = decision_boundary_2d(&model, &ps, [0.0, 0.0], [0.0, 1.0], 10);
    }
}
