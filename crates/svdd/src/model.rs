//! The trained SVDD model: multipliers, radius, and decision function.

use dbsvec_geometry::{PointId, PointSet};

use crate::cache::DistCacheStats;
use crate::kernel::GaussianKernel;

/// Classification of a target point by its multiplier (paper §II-D).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SvType {
    /// `α_i ≈ 0`: interior point, not a support vector.
    Interior,
    /// `0 < α_i < ω_i C`: normal support vector, on the sphere surface.
    Normal,
    /// `α_i ≈ ω_i C`: bounded support vector, outside the sphere.
    Bounded,
}

/// How one SMO solve went: iteration spend, termination cause, warm-start
/// quality, shrinking effectiveness, and distance-row cache traffic.
///
/// All values are deterministic at every thread count (the solver's
/// parallel paths only precompute pure rows).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SolveDiagnostics {
    /// SMO iterations spent.
    pub iterations: usize,
    /// `true` when the solver stopped with KKT violation below tolerance;
    /// `false` when it exhausted [`crate::SmoOptions::max_iterations`].
    pub converged: bool,
    /// Whether the solve started from a previous round's α (a session was
    /// attached, warm starting was enabled, and a prior solve existed).
    pub warm_started: bool,
    /// The KKT violation `g_down − g_up` of the starting point, measured
    /// at the first working-set selection (0 when the start was already
    /// optimal). A warm start is good exactly when this is small.
    pub initial_kkt_violation: f64,
    /// Peak number of variables simultaneously removed from the working
    /// set by active-set shrinking (0 with shrinking disabled).
    pub shrunk_peak: usize,
    /// Full KKT re-scans performed to validate convergence after
    /// shrinking (gradient reconstruction passes).
    pub rescans: usize,
    /// Distance-row cache traffic attributable to *this* solve (deltas of
    /// the possibly session-shared cache counters).
    pub cache: DistCacheStats,
}

/// A solved (weighted) SVDD description of one target set.
///
/// Produced by [`crate::SvddProblem::solve`]. The model keeps the target
/// point *ids* and multipliers; evaluating the decision function requires
/// the same [`PointSet`] the problem was built from.
#[derive(Clone, Debug)]
pub struct SvddModel {
    target_ids: Vec<PointId>,
    alpha: Vec<f64>,
    upper: Vec<f64>,
    kernel: GaussianKernel,
    /// Squared sphere radius in kernel space.
    r_sq: f64,
    /// The constant `αᵀKα` appearing in the decision function.
    alpha_k_alpha: f64,
    /// Indices (into `target_ids`) of points with `α > tol`.
    support: Vec<usize>,
    /// How the solve went (iterations, termination, cache traffic).
    diag: SolveDiagnostics,
}

/// Multipliers below this are treated as exactly zero.
pub(crate) const ALPHA_TOL: f64 = 1e-9;

impl SvddModel {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        target_ids: Vec<PointId>,
        alpha: Vec<f64>,
        upper: Vec<f64>,
        kernel: GaussianKernel,
        r_sq: f64,
        alpha_k_alpha: f64,
        diag: SolveDiagnostics,
    ) -> Self {
        let support = alpha
            .iter()
            .enumerate()
            .filter(|(_, &a)| a > ALPHA_TOL)
            .map(|(i, _)| i)
            .collect();
        Self {
            target_ids,
            alpha,
            upper,
            kernel,
            r_sq,
            alpha_k_alpha,
            support,
            diag,
        }
    }

    /// Ids of the support vectors (`α_i > 0`), in target order.
    pub fn support_vectors(&self) -> Vec<PointId> {
        self.support.iter().map(|&i| self.target_ids[i]).collect()
    }

    /// Number of support vectors.
    pub fn num_support_vectors(&self) -> usize {
        self.support.len()
    }

    /// The target ids the model was trained on.
    pub fn target_ids(&self) -> &[PointId] {
        &self.target_ids
    }

    /// The Lagrange multipliers, aligned with [`SvddModel::target_ids`].
    pub fn alphas(&self) -> &[f64] {
        &self.alpha
    }

    /// Classifies target point `i` (index into [`SvddModel::target_ids`]).
    pub fn sv_type(&self, i: usize) -> SvType {
        let a = self.alpha[i];
        if a <= ALPHA_TOL {
            SvType::Interior
        } else if a >= self.upper[i] - ALPHA_TOL {
            SvType::Bounded
        } else {
            SvType::Normal
        }
    }

    /// Squared kernel-space radius `R²` of the description sphere.
    pub fn radius_sq(&self) -> f64 {
        self.r_sq
    }

    /// The constant term `αᵀKα` of the decision function — needed (along
    /// with the support vectors, α's, σ, and `R²`) to evaluate
    /// [`SvddModel::decision`] without re-solving, e.g. after persisting a
    /// trained boundary.
    pub fn alpha_k_alpha(&self) -> f64 {
        self.alpha_k_alpha
    }

    /// The kernel the model was trained with.
    pub fn kernel(&self) -> GaussianKernel {
        self.kernel
    }

    /// SMO iterations used to reach convergence.
    pub fn iterations(&self) -> usize {
        self.diag.iterations
    }

    /// Distance-row cache `(hits, misses)` recorded during the solve.
    pub fn cache_stats(&self) -> (u64, u64) {
        (self.diag.cache.hits, self.diag.cache.misses)
    }

    /// Full solve diagnostics (termination, warm start, shrinking, cache).
    pub fn diagnostics(&self) -> SolveDiagnostics {
        self.diag
    }

    /// Whether the solver reached the KKT tolerance (as opposed to
    /// exhausting its iteration budget).
    pub fn converged(&self) -> bool {
        self.diag.converged
    }

    /// The discrimination function `F(x) = ||Φ(x) − a||²` (paper Eq. 12):
    ///
    /// ```text
    /// F(x) = K(x,x) − 2 Σ_i α_i K(x_i, x) + αᵀKα
    /// ```
    ///
    /// `x` is inside the described domain iff `F(x) <= R²`.
    pub fn decision(&self, points: &PointSet, x: &[f64]) -> f64 {
        let mut cross = 0.0;
        for &i in &self.support {
            cross += self.alpha[i] * self.kernel.eval(points.point(self.target_ids[i]), x);
        }
        1.0 - 2.0 * cross + self.alpha_k_alpha
    }

    /// Whether `x` lies inside (or on) the description sphere.
    pub fn contains(&self, points: &PointSet, x: &[f64]) -> bool {
        self.decision(points, x) <= self.r_sq + 1e-9
    }
}
