//! Adaptive penalty weights (paper §IV-A, Eq. 5 and Eq. 7).
//!
//! The weighted SVDD dual bounds each multiplier by `ω_i C` instead of a
//! uniform `C`. A *small* weight makes a point's slack cheap, letting it sit
//! outside the sphere as a bounded support vector — so the weight formula
//! gives small values to the points DBSVEC wants as support vectors:
//!
//! ```text
//! ω_i = λ^{t_i} · (1 − D(x_i) / max_j D(x_j))          (Eq. 7)
//! ```
//!
//! * `t_i` — how many SVDD trainings point `i` already participated in;
//!   `λ > 1` makes *old* points exponentially heavier (they have had their
//!   chance to expand the sub-cluster),
//! * `D(x_i)` — squared kernel-space distance from `x_i` to the target-set
//!   mean (Eq. 5); far points get weights near the floor.
//!
//! Two practical guards the paper leaves implicit:
//!
//! 1. the raw formula gives exactly `ω = 0` to the farthest point, which
//!    would forbid it from ever becoming a support vector — the opposite of
//!    the intent — so weights are floored at [`WeightOptions::floor`];
//! 2. the dual is only feasible when `Σ_i ω_i C >= 1`; [`penalty_weights`]
//!    rescales the weights up when the caller's `C` would violate that.

use dbsvec_geometry::{PointId, PointSet};

use crate::kernel::GaussianKernel;

/// Tuning for [`penalty_weights`].
#[derive(Clone, Copy, Debug)]
pub struct WeightOptions {
    /// Memory factor `λ > 1` of Eq. 7. The paper does not publish its value;
    /// 1.5 keeps three trainings (`T = 3`) within one order of magnitude.
    pub lambda: f64,
    /// Lower bound applied to every weight (see module docs).
    pub floor: f64,
    /// Use the exact Eq. 5 kernel distance (O(ñ²·d)) instead of the O(ñ·d)
    /// input-space radial proxy.
    ///
    /// The paper's cost model (§IV-D) charges weight computation O(ñ) time,
    /// which the literal Eq. 5 — a full Gram row sum per point — cannot
    /// meet. For a Gaussian kernel the kernel distance to the kernel-space
    /// mean is a monotone function of the mean similarity `(1/ñ)Σ_j K`,
    /// which on the unimodal targets SVDD sees ranks points the same way
    /// the squared distance to the input-space centroid does. Since Eq. 7
    /// only consumes the *relative* distance `D/max D`, the proxy keeps the
    /// selection behaviour at linear cost. Tests verify the orderings
    /// agree; set this to `true` to pay for the literal formula.
    pub exact_kernel_distance: bool,
}

impl Default for WeightOptions {
    fn default() -> Self {
        Self {
            lambda: 1.5,
            floor: 0.05,
            exact_kernel_distance: false,
        }
    }
}

/// Squared kernel-space distances `D(x_i)` from each target point to the
/// kernel-space mean of the target set (Eq. 5).
///
/// With a Gaussian kernel, `K(x, x) = 1`, so
/// `D(x_i) = m̄ + 1 − 2 s_i` where `s_i = (1/ñ) Σ_j K(x_i, x_j)` and
/// `m̄ = (1/ñ) Σ_i s_i`. One O(ñ²·d) pass computes every `s_i`.
pub fn kernel_distances(points: &PointSet, ids: &[PointId], kernel: GaussianKernel) -> Vec<f64> {
    let n = ids.len();
    if n == 0 {
        return Vec::new();
    }
    let mut s = vec![0.0; n];
    for i in 0..n {
        let pi = points.point(ids[i]);
        s[i] += 1.0; // K(x_i, x_i)
        for j in (i + 1)..n {
            let k = kernel.eval(pi, points.point(ids[j]));
            s[i] += k;
            s[j] += k;
        }
    }
    for v in &mut s {
        *v /= n as f64;
    }
    let mean: f64 = s.iter().sum::<f64>() / n as f64;
    s.into_iter().map(|si| mean + 1.0 - 2.0 * si).collect()
}

/// O(ñ·d) proxy for [`kernel_distances`]: squared Euclidean distance from
/// each target point to the input-space centroid. See
/// [`WeightOptions::exact_kernel_distance`] for why this preserves Eq. 7's
/// behaviour at linear cost.
pub fn centroid_distances(points: &PointSet, ids: &[PointId]) -> Vec<f64> {
    let n = ids.len();
    if n == 0 {
        return Vec::new();
    }
    let dims = points.dims();
    let mut centroid = vec![0.0; dims];
    for &id in ids {
        for (c, &x) in centroid.iter_mut().zip(points.point(id)) {
            *c += x;
        }
    }
    for c in &mut centroid {
        *c /= n as f64;
    }
    ids.iter()
        .map(|&id| dbsvec_geometry::squared_euclidean(points.point(id), &centroid))
        .collect()
}

/// Computes the penalty weights of Eq. 7 with the feasibility guards.
///
/// `train_counts[i]` is `t_i`, the number of SVDD trainings point `ids[i]`
/// has participated in so far. `c` is the penalty factor the caller will use
/// as the base box bound; it is needed to enforce `Σ ω_i c >= 1`.
///
/// # Panics
///
/// Panics if the slices disagree in length or `c <= 0`.
pub fn penalty_weights(
    points: &PointSet,
    ids: &[PointId],
    train_counts: &[u32],
    kernel: GaussianKernel,
    c: f64,
    options: WeightOptions,
) -> Vec<f64> {
    assert_eq!(
        ids.len(),
        train_counts.len(),
        "one train count per target point"
    );
    assert!(c > 0.0, "penalty factor must be positive");
    let n = ids.len();
    if n == 0 {
        return Vec::new();
    }

    let dist = if options.exact_kernel_distance {
        kernel_distances(points, ids, kernel)
    } else {
        centroid_distances(points, ids)
    };
    let max_d = dist.iter().cloned().fold(f64::NEG_INFINITY, f64::max);

    let mut weights: Vec<f64> = dist
        .iter()
        .zip(train_counts)
        .map(|(&d, &t)| {
            let radial = if max_d > 0.0 { 1.0 - d / max_d } else { 1.0 };
            (options.lambda.powi(t as i32) * radial).max(options.floor)
        })
        .collect();

    // Feasibility: the dual needs Σ α_i = 1 under α_i <= ω_i C.
    let total: f64 = weights.iter().sum::<f64>() * c;
    if total < 1.0 {
        let scale = 1.05 / total; // 5% headroom so some α can stay interior
        for w in &mut weights {
            *w *= scale;
        }
    }
    weights
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_points() -> (PointSet, Vec<PointId>) {
        // Points on a line: 0, 1, 2, 10 — the last is far from the mean.
        let ps = PointSet::from_rows(&[vec![0.0], vec![1.0], vec![2.0], vec![10.0]]);
        (ps, vec![0, 1, 2, 3])
    }

    #[test]
    fn kernel_distances_rank_far_points_higher() {
        let (ps, ids) = line_points();
        let k = GaussianKernel::from_width(3.0);
        let d = kernel_distances(&ps, &ids, k);
        let far = d[3];
        for (i, &di) in d.iter().enumerate().take(3) {
            assert!(di < far, "interior point {i} should be closer to the mean");
        }
    }

    #[test]
    fn far_points_get_small_weights() {
        let (ps, ids) = line_points();
        let k = GaussianKernel::from_width(3.0);
        let w = penalty_weights(&ps, &ids, &[0; 4], k, 10.0, WeightOptions::default());
        assert!(w[3] < w[1], "farthest point must have the smallest weight");
        assert!(w.iter().all(|&x| x >= WeightOptions::default().floor));
    }

    #[test]
    fn old_points_get_large_weights() {
        let (ps, ids) = line_points();
        let k = GaussianKernel::from_width(3.0);
        let fresh = penalty_weights(&ps, &ids, &[0, 0, 0, 0], k, 10.0, WeightOptions::default());
        let aged = penalty_weights(&ps, &ids, &[3, 0, 0, 0], k, 10.0, WeightOptions::default());
        assert!(
            aged[0] > fresh[0],
            "a point trained 3 times must weigh more"
        );
        assert!((aged[1] - fresh[1]).abs() < 1e-12, "other points unchanged");
    }

    #[test]
    fn feasibility_rescue_scales_up() {
        let (ps, ids) = line_points();
        let k = GaussianKernel::from_width(3.0);
        // Tiny C: raw Σ ωC would be far below 1.
        let c = 1e-4;
        let w = penalty_weights(&ps, &ids, &[0; 4], k, c, WeightOptions::default());
        let total: f64 = w.iter().sum::<f64>() * c;
        assert!(
            total >= 1.0,
            "rescaled weights must make the dual feasible, got {total}"
        );
    }

    #[test]
    fn identical_points_get_equal_weights() {
        let ps = PointSet::from_rows(&vec![vec![5.0, 5.0]; 6]);
        let ids: Vec<PointId> = (0..6).collect();
        let k = GaussianKernel::from_width(1.0);
        let w = penalty_weights(&ps, &ids, &[0; 6], k, 1.0, WeightOptions::default());
        for &x in &w {
            assert!((x - w[0]).abs() < 1e-12);
        }
    }

    #[test]
    fn proxy_and_exact_kernel_distance_rank_alike() {
        // On a unimodal target, the O(ñ) centroid proxy must order points
        // the same way the exact Eq. 5 kernel distance does.
        let mut ps = PointSet::new(2);
        for i in 0..30 {
            let a = i as f64 * 0.7;
            ps.push(&[a.cos() * (i as f64 * 0.1), a.sin() * (i as f64 * 0.1)]);
        }
        let ids: Vec<PointId> = (0..30).collect();
        let k = GaussianKernel::from_width(2.0);
        let exact = kernel_distances(&ps, &ids, k);
        let proxy = centroid_distances(&ps, &ids);
        let order = |v: &[f64]| {
            let mut idx: Vec<usize> = (0..v.len()).collect();
            idx.sort_by(|&a, &b| v[a].partial_cmp(&v[b]).unwrap());
            idx
        };
        // Spearman-like check: rank positions agree within a small offset.
        let eo = order(&exact);
        let po = order(&proxy);
        let mut rank_e = vec![0usize; 30];
        let mut rank_p = vec![0usize; 30];
        for (r, &i) in eo.iter().enumerate() {
            rank_e[i] = r;
        }
        for (r, &i) in po.iter().enumerate() {
            rank_p[i] = r;
        }
        let max_rank_gap = (0..30)
            .map(|i| rank_e[i].abs_diff(rank_p[i]))
            .max()
            .unwrap();
        assert!(
            max_rank_gap <= 4,
            "rankings diverge by {max_rank_gap} positions"
        );
    }

    #[test]
    fn exact_option_is_honored() {
        let (ps, ids) = line_points();
        let k = GaussianKernel::from_width(3.0);
        let exact_opts = WeightOptions {
            exact_kernel_distance: true,
            ..Default::default()
        };
        let w_exact = penalty_weights(&ps, &ids, &[0; 4], k, 10.0, exact_opts);
        let w_proxy = penalty_weights(&ps, &ids, &[0; 4], k, 10.0, WeightOptions::default());
        // Both agree on who weighs least (the outlier at 10.0)...
        assert!(w_exact[3] <= w_exact[1]);
        assert!(w_proxy[3] <= w_proxy[1]);
        // ...but the magnitudes generally differ.
        assert!(w_exact != w_proxy);
    }

    #[test]
    fn empty_target_is_empty() {
        let ps = PointSet::new(2);
        let k = GaussianKernel::from_width(1.0);
        assert!(penalty_weights(&ps, &[], &[], k, 1.0, WeightOptions::default()).is_empty());
    }
}
