//! The Gaussian (RBF) kernel used by DBSVEC's SVDD (paper Eq. 6).

use dbsvec_geometry::squared_euclidean;

/// Gaussian kernel `K(x, y) = exp(-||x - y||² / (2σ²))`.
///
/// `σ` is the RMS width parameter. The paper selects
/// `σ = r/√2` per sub-cluster (see [`crate::params`]); with that choice the
/// solution function of Eq. 16 is unimodal and SVDD does not overfit.
///
/// Two properties the solver relies on:
/// * `K(x, x) = 1` for every `x`, so the dual objective's linear term is
///   constant and SVDD coincides with one-class SVM (paper footnote 1);
/// * `K` is strictly positive definite for distinct points, so the SMO pair
///   curvature `K_ii + K_jj − 2K_ij` is positive unless the points coincide.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GaussianKernel {
    sigma: f64,
    /// Precomputed `1 / (2σ²)`.
    gamma: f64,
}

impl GaussianKernel {
    /// Creates a kernel with RMS width `sigma`.
    ///
    /// # Panics
    ///
    /// Panics unless `sigma` is strictly positive and finite.
    pub fn from_width(sigma: f64) -> Self {
        assert!(
            sigma.is_finite() && sigma > 0.0,
            "kernel width must be positive and finite, got {sigma}"
        );
        Self {
            sigma,
            gamma: 1.0 / (2.0 * sigma * sigma),
        }
    }

    /// The RMS width σ.
    #[inline]
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Evaluates `K(a, b)`.
    #[inline]
    pub fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        self.eval_sq_dist(squared_euclidean(a, b))
    }

    /// Evaluates the kernel from a precomputed squared distance.
    #[inline]
    pub fn eval_sq_dist(&self, sq_dist: f64) -> f64 {
        (-self.gamma * sq_dist).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_similarity_is_one() {
        let k = GaussianKernel::from_width(2.5);
        assert_eq!(k.eval(&[1.0, -3.0], &[1.0, -3.0]), 1.0);
    }

    #[test]
    fn symmetric_and_bounded() {
        let k = GaussianKernel::from_width(1.0);
        let a = [0.0, 0.0];
        let b = [1.0, 2.0];
        assert_eq!(k.eval(&a, &b), k.eval(&b, &a));
        assert!(k.eval(&a, &b) > 0.0 && k.eval(&a, &b) < 1.0);
    }

    #[test]
    fn matches_closed_form() {
        let k = GaussianKernel::from_width(2.0);
        // ||a-b||² = 8, so K = exp(-8/(2·4)) = exp(-1).
        let v = k.eval(&[0.0, 0.0], &[2.0, 2.0]);
        assert!((v - (-1.0f64).exp()).abs() < 1e-15);
    }

    #[test]
    fn smaller_sigma_decays_faster() {
        let narrow = GaussianKernel::from_width(0.5);
        let wide = GaussianKernel::from_width(5.0);
        let a = [0.0];
        let b = [1.0];
        assert!(narrow.eval(&a, &b) < wide.eval(&a, &b));
    }

    #[test]
    #[should_panic(expected = "kernel width must be positive")]
    fn rejects_zero_sigma() {
        let _ = GaussianKernel::from_width(0.0);
    }

    #[test]
    #[should_panic(expected = "kernel width must be positive")]
    fn rejects_nan_sigma() {
        let _ = GaussianKernel::from_width(f64::NAN);
    }
}
