//! Randomized property tests: the SMO solver against first principles.
//!
//! Deterministic SplitMix64-driven instance loops; fixed seeds make every
//! failure exactly reproducible.

use dbsvec_geometry::rng::SplitMix64;
use dbsvec_geometry::{PointId, PointSet};
use dbsvec_svdd::{GaussianKernel, SvddProblem};

fn point_set(rng: &mut SplitMix64, max_n: usize, max_d: usize) -> PointSet {
    let d = 1 + rng.next_below(max_d as u64) as usize;
    let n = 2 + rng.next_below(max_n as u64 - 1) as usize;
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..d).map(|_| rng.next_f64_range(-50.0, 50.0)).collect())
        .collect();
    PointSet::from_rows(&rows)
}

/// Dense dual objective f(α) = αᵀKα.
fn objective(points: &PointSet, ids: &[PointId], kernel: GaussianKernel, alpha: &[f64]) -> f64 {
    let n = ids.len();
    let mut f = 0.0;
    for i in 0..n {
        for j in 0..n {
            f += alpha[i] * alpha[j] * kernel.eval(points.point(ids[i]), points.point(ids[j]));
        }
    }
    f
}

#[test]
fn smo_beats_random_feasible_points() {
    let mut rng = SplitMix64::new(0x6A0);
    for _ in 0..32 {
        let ps = point_set(&mut rng, 25, 3);
        let nu = rng.next_f64_range(0.2, 1.0);
        let ids: Vec<PointId> = (0..ps.len() as u32).collect();
        let n = ids.len();
        let nu = nu.max(1.0 / n as f64);
        let kernel = GaussianKernel::from_width(20.0);
        let model = SvddProblem::new(&ps, &ids, kernel).with_nu(nu).solve();
        let f_smo = objective(&ps, &ids, kernel, model.alphas());

        // Sample random feasible α (projected onto the simplex, clipped to
        // the box by rejection) and confirm none beats the solver.
        let c = 1.0 / (nu * n as f64);
        let mut tried = 0;
        let mut attempts = 0;
        while tried < 20 && attempts < 500 {
            attempts += 1;
            let raw: Vec<f64> = (0..n).map(|_| rng.next_f64()).collect();
            let sum: f64 = raw.iter().sum();
            let alpha: Vec<f64> = raw.iter().map(|&x| x / sum).collect();
            if alpha.iter().any(|&a| a > c) {
                continue; // infeasible under the box, skip
            }
            tried += 1;
            let f_rand = objective(&ps, &ids, kernel, &alpha);
            assert!(
                f_smo <= f_rand + 1e-6,
                "random feasible point beat SMO: {f_rand} < {f_smo}"
            );
        }
    }
}

#[test]
fn uniform_is_optimal_under_tightest_box() {
    let mut rng = SplitMix64::new(0x7B1);
    for _ in 0..32 {
        // ν = 1 forces α_i = 1/n exactly (the box is the simplex center).
        let ps = point_set(&mut rng, 20, 2);
        let ids: Vec<PointId> = (0..ps.len() as u32).collect();
        let n = ids.len();
        let model = SvddProblem::new(&ps, &ids, GaussianKernel::from_width(10.0))
            .with_nu(1.0)
            .solve();
        for &a in model.alphas() {
            assert!((a - 1.0 / n as f64).abs() < 1e-9);
        }
    }
}

#[test]
fn decision_function_is_translation_invariant() {
    let mut rng = SplitMix64::new(0x8C2);
    for _ in 0..32 {
        // The Gaussian kernel depends only on differences, so translating
        // every point must not change multipliers or the radius.
        let ps = point_set(&mut rng, 15, 2);
        let shift = rng.next_f64_range(-100.0, 100.0);
        let ids: Vec<PointId> = (0..ps.len() as u32).collect();
        let kernel = GaussianKernel::from_width(15.0);
        let model_a = SvddProblem::new(&ps, &ids, kernel).with_nu(0.5).solve();

        let shifted_rows: Vec<Vec<f64>> = (0..ps.len())
            .map(|i| ps.point(i as u32).iter().map(|&x| x + shift).collect())
            .collect();
        let shifted = PointSet::from_rows(&shifted_rows);
        let model_b = SvddProblem::new(&shifted, &ids, kernel)
            .with_nu(0.5)
            .solve();

        // Floating-point translation perturbs kernel entries in the last
        // bits, so compare solution *quality*, not the (non-unique) α path.
        let f_a = objective(&ps, &ids, kernel, model_a.alphas());
        let f_b = objective(&shifted, &ids, kernel, model_b.alphas());
        assert!(
            (f_a - f_b).abs() < 1e-4,
            "objectives differ: {f_a} vs {f_b}"
        );
        assert!(
            (model_a.radius_sq() - model_b.radius_sq()).abs() < 1e-3,
            "radii differ: {} vs {}",
            model_a.radius_sq(),
            model_b.radius_sq()
        );
    }
}

#[test]
fn support_vectors_cover_the_hull_in_1d() {
    let mut rng = SplitMix64::new(0x9D3);
    let mut checked = 0;
    for _ in 0..64 {
        // In 1-D the extreme points (min and max) are always on the data
        // boundary; with a moderate ν they must be support vectors.
        let n = 5 + rng.next_below(35) as usize;
        let xs: Vec<f64> = (0..n).map(|_| rng.next_f64_range(-100.0, 100.0)).collect();
        let spread = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - xs.iter().cloned().fold(f64::INFINITY, f64::min);
        if spread <= 1.0 {
            continue; // degenerate draw, skip (proptest `prop_assume` analog)
        }
        checked += 1;
        let rows: Vec<Vec<f64>> = xs.iter().map(|&x| vec![x]).collect();
        let ps = PointSet::from_rows(&rows);
        let ids: Vec<PointId> = (0..ps.len() as u32).collect();
        let kernel = GaussianKernel::from_width(spread / 2.0f64.sqrt());
        let model = SvddProblem::new(&ps, &ids, kernel).with_nu(0.3).solve();
        let svs = model.support_vectors();
        // Duplicated extremes may share the multiplier mass, so assert that
        // *some* point at (or within a hair of) each extreme value is an SV.
        let min_val = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max_val = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let tol = spread * 1e-6;
        assert!(
            svs.iter()
                .any(|&id| (xs[id as usize] - min_val).abs() <= tol),
            "no support vector at the min extreme"
        );
        assert!(
            svs.iter()
                .any(|&id| (xs[id as usize] - max_val).abs() <= tol),
            "no support vector at the max extreme"
        );
    }
    assert!(checked >= 32, "too many degenerate draws: {checked}");
}
