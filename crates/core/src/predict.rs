//! Out-of-sample prediction against a fitted clustering.
//!
//! DBSCAN-family clusterings are defined by their **core points**: a new
//! observation belongs to the cluster of the nearest core point within ε
//! of it, and is noise otherwise — the same rule DBSVEC's noise
//! verification applies to borderline training points. [`ClusterModel`]
//! captures the core points of a finished run so that streaming points can
//! be classified without re-clustering.

use std::fmt;

use dbsvec_geometry::{PointId, PointSet};
use dbsvec_index::{KdTree, RangeIndex};

use crate::labels::Clustering;

/// Why a [`ClusterModel`] could not be built.
///
/// A correct in-process clustering never produces these — they guard the
/// untrusted path, where core points and labels arrive from a persisted
/// snapshot that may be stale, corrupted, or hand-edited.
#[derive(Clone, Debug, PartialEq)]
pub enum ModelError {
    /// ε was not finite and positive.
    BadEps(f64),
    /// A listed core point carries no cluster label.
    NoiseCore(PointId),
    /// A core id does not refer to a training point.
    IdOutOfRange {
        /// The offending id.
        id: PointId,
        /// Number of training points.
        len: usize,
    },
    /// A core label names a cluster the model does not have.
    LabelOutOfRange {
        /// The offending label.
        label: u32,
        /// Number of clusters in the model.
        num_clusters: usize,
    },
    /// `cores` and `core_labels` disagree in length.
    LengthMismatch {
        /// Number of core points.
        cores: usize,
        /// Number of core labels.
        labels: usize,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::BadEps(eps) => write!(f, "eps must be positive and finite, got {eps}"),
            ModelError::NoiseCore(id) => write!(f, "core point {id} is unclustered (noise)"),
            ModelError::IdOutOfRange { id, len } => {
                write!(f, "core id {id} out of range for {len} points")
            }
            ModelError::LabelOutOfRange {
                label,
                num_clusters,
            } => write!(
                f,
                "core label {label} out of range for {num_clusters} clusters"
            ),
            ModelError::LengthMismatch { cores, labels } => {
                write!(f, "{cores} core points but {labels} core labels")
            }
        }
    }
}

impl std::error::Error for ModelError {}

/// A fitted density clustering reduced to its classification essentials:
/// the core points and their cluster ids.
#[derive(Clone, Debug)]
pub struct ClusterModel {
    /// Coordinates of the core points (owned — the model outlives the
    /// training set).
    cores: PointSet,
    /// Cluster id of each core point, aligned with `cores`.
    core_labels: Vec<u32>,
    /// The ε the clustering was fitted with.
    eps: f64,
    num_clusters: usize,
}

impl ClusterModel {
    /// Builds a model from a finished clustering.
    ///
    /// `core_ids` are the training points that passed the core test (for
    /// DBSVEC, [`crate::DbsvecResult::core_points`]); every one of them
    /// must be clustered. Rejects noise cores, out-of-range ids, and a
    /// non-positive ε instead of panicking, so callers reconstructing a
    /// model from persisted state can surface the corruption.
    pub fn new(
        points: &PointSet,
        clustering: &Clustering,
        core_ids: &[PointId],
        eps: f64,
    ) -> Result<Self, ModelError> {
        if !(eps.is_finite() && eps > 0.0) {
            return Err(ModelError::BadEps(eps));
        }
        let mut cores = PointSet::with_capacity(points.dims(), core_ids.len());
        let mut core_labels = Vec::with_capacity(core_ids.len());
        for &id in core_ids {
            if (id as usize) >= points.len() {
                return Err(ModelError::IdOutOfRange {
                    id,
                    len: points.len(),
                });
            }
            let label = clustering
                .get(id as usize)
                .ok_or(ModelError::NoiseCore(id))?;
            cores.push(points.point(id));
            core_labels.push(label);
        }
        Ok(Self {
            cores,
            core_labels,
            eps,
            num_clusters: clustering.num_clusters(),
        })
    }

    /// Rebuilds a model from its stored parts (the snapshot-load path).
    ///
    /// Validates the same invariants [`ClusterModel::new`] derives from a
    /// live clustering: aligned lengths, labels within `num_clusters`, and
    /// a positive finite ε.
    pub fn from_parts(
        cores: PointSet,
        core_labels: Vec<u32>,
        eps: f64,
        num_clusters: usize,
    ) -> Result<Self, ModelError> {
        if !(eps.is_finite() && eps > 0.0) {
            return Err(ModelError::BadEps(eps));
        }
        if cores.len() != core_labels.len() {
            return Err(ModelError::LengthMismatch {
                cores: cores.len(),
                labels: core_labels.len(),
            });
        }
        if let Some(&label) = core_labels.iter().find(|&&l| (l as usize) >= num_clusters) {
            return Err(ModelError::LabelOutOfRange {
                label,
                num_clusters,
            });
        }
        Ok(Self {
            cores,
            core_labels,
            eps,
            num_clusters,
        })
    }

    /// Number of core points retained.
    pub fn core_count(&self) -> usize {
        self.cores.len()
    }

    /// The retained core points.
    pub fn cores(&self) -> &PointSet {
        &self.cores
    }

    /// Cluster id of each core point, aligned with [`ClusterModel::cores`].
    pub fn core_labels(&self) -> &[u32] {
        &self.core_labels
    }

    /// Number of clusters in the fitted model.
    pub fn num_clusters(&self) -> usize {
        self.num_clusters
    }

    /// The ε the model classifies with.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// Classifies one observation: the cluster of the nearest core point
    /// within ε, or `None` (noise/outlier).
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong dimensionality.
    pub fn predict(&self, x: &[f64]) -> Option<u32> {
        assert_eq!(x.len(), self.cores.dims(), "query dimensionality mismatch");
        let eps_sq = self.eps * self.eps;
        let mut best: Option<(f64, u32)> = None;
        for (i, core) in self.cores.iter() {
            let d = dbsvec_geometry::squared_euclidean(core, x);
            if d <= eps_sq && best.map_or(true, |(bd, _)| d < bd) {
                best = Some((d, self.core_labels[i as usize]));
            }
        }
        best.map(|(_, label)| label)
    }

    /// Classifies a batch, using a kd-tree over the core points when the
    /// batch is large enough to amortize the build.
    pub fn predict_batch(&self, queries: &PointSet) -> Vec<Option<u32>> {
        assert_eq!(
            queries.dims(),
            self.cores.dims(),
            "query dimensionality mismatch"
        );
        if queries.len() * self.core_count() < 10_000 {
            return queries.iter().map(|(_, q)| self.predict(q)).collect();
        }
        let tree = KdTree::build(&self.cores);
        let mut hits: Vec<PointId> = Vec::new();
        queries
            .iter()
            .map(|(_, q)| {
                hits.clear();
                tree.range(q, self.eps, &mut hits);
                hits.iter()
                    .map(|&c| {
                        (
                            self.cores.squared_distance_to(c, q),
                            self.core_labels[c as usize],
                        )
                    })
                    .min_by(|a, b| a.0.partial_cmp(&b.0).expect("NaN distance"))
                    .map(|(_, label)| label)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dbsvec, DbsvecConfig};

    fn fitted_model() -> (PointSet, ClusterModel) {
        let mut ps = PointSet::new(2);
        for i in 0..40 {
            ps.push(&[i as f64 * 0.1, 0.0]); // cluster 0 along y = 0
            ps.push(&[i as f64 * 0.1, 50.0]); // cluster 1 along y = 50
        }
        let result = Dbsvec::new(DbsvecConfig::new(0.5, 4)).fit(&ps);
        assert_eq!(result.num_clusters(), 2);
        let model = ClusterModel::new(&ps, result.labels(), result.core_points(), 0.5)
            .expect("valid fit produces a valid model");
        (ps, model)
    }

    #[test]
    fn predicts_cluster_membership_and_noise() {
        let (_, model) = fitted_model();
        assert_eq!(model.num_clusters(), 2);
        let near_zero = model.predict(&[2.0, 0.2]);
        let near_fifty = model.predict(&[2.0, 49.8]);
        assert!(near_zero.is_some() && near_fifty.is_some());
        assert_ne!(near_zero, near_fifty);
        assert_eq!(model.predict(&[2.0, 25.0]), None, "far point must be noise");
    }

    #[test]
    fn training_points_predict_their_own_cluster() {
        let (ps, model) = fitted_model();
        let result = Dbsvec::new(DbsvecConfig::new(0.5, 4)).fit(&ps);
        for (i, p) in ps.iter() {
            let predicted = model.predict(p);
            assert_eq!(predicted, result.labels().get(i as usize), "point {i}");
        }
    }

    #[test]
    fn batch_agrees_with_scalar_path() {
        let (_, model) = fitted_model();
        let mut queries = PointSet::new(2);
        for i in 0..300 {
            queries.push(&[(i % 50) as f64 * 0.08, (i % 3) as f64 * 25.0]);
        }
        let batch = model.predict_batch(&queries);
        for (i, q) in queries.iter() {
            assert_eq!(batch[i as usize], model.predict(q), "query {i}");
        }
    }

    #[test]
    fn nearest_core_wins_ties_toward_proximity() {
        // Two cores of different clusters; query closer to cluster 1's core.
        let ps = PointSet::from_rows(&[vec![0.0], vec![10.0]]);
        let clustering = crate::labels::Clustering::from_assignments(vec![Some(0), Some(1)]);
        let model = ClusterModel::new(&ps, &clustering, &[0, 1], 8.0).unwrap();
        assert_eq!(model.predict(&[6.5]), Some(1));
        assert_eq!(model.predict(&[3.0]), Some(0));
    }

    #[test]
    fn construction_rejects_corrupt_inputs() {
        let ps = PointSet::from_rows(&[vec![0.0], vec![10.0]]);
        let clustering = crate::labels::Clustering::from_assignments(vec![Some(0), None]);
        assert_eq!(
            ClusterModel::new(&ps, &clustering, &[0], 0.0).unwrap_err(),
            ModelError::BadEps(0.0)
        );
        assert!(matches!(
            ClusterModel::new(&ps, &clustering, &[0], f64::NAN),
            Err(ModelError::BadEps(_))
        ));
        assert_eq!(
            ClusterModel::new(&ps, &clustering, &[1], 1.0).unwrap_err(),
            ModelError::NoiseCore(1)
        );
        assert_eq!(
            ClusterModel::new(&ps, &clustering, &[7], 1.0).unwrap_err(),
            ModelError::IdOutOfRange { id: 7, len: 2 }
        );
    }

    #[test]
    fn from_parts_round_trips_and_validates() {
        let (_, model) = fitted_model();
        let rebuilt = ClusterModel::from_parts(
            model.cores().clone(),
            model.core_labels().to_vec(),
            model.eps(),
            model.num_clusters(),
        )
        .expect("parts of a valid model are valid");
        assert_eq!(rebuilt.core_count(), model.core_count());
        assert_eq!(rebuilt.predict(&[2.0, 0.2]), model.predict(&[2.0, 0.2]));

        let cores = PointSet::from_rows(&[vec![0.0]]);
        assert_eq!(
            ClusterModel::from_parts(cores.clone(), vec![0, 1], 1.0, 2).unwrap_err(),
            ModelError::LengthMismatch {
                cores: 1,
                labels: 2
            }
        );
        assert_eq!(
            ClusterModel::from_parts(cores.clone(), vec![5], 1.0, 2).unwrap_err(),
            ModelError::LabelOutOfRange {
                label: 5,
                num_clusters: 2
            }
        );
        assert!(matches!(
            ClusterModel::from_parts(cores, vec![0], -1.0, 2).unwrap_err(),
            ModelError::BadEps(_)
        ));
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn rejects_wrong_dimensionality() {
        let (_, model) = fitted_model();
        let _ = model.predict(&[1.0, 2.0, 3.0]);
    }
}
