//! Noise verification (paper Algorithm 2 line 16 and §III-B).
//!
//! Because DBSVEC only queries support vectors, a border point near a core
//! point that was never selected as a support vector can finish the main
//! loop still marked as potential noise. The final pass fixes this, and it
//! is what makes Theorems 2 and 3 (border/noise equivalence with DBSCAN)
//! hold: every potential noise point either has a core point in its
//! ε-neighborhood — then it is a border point and joins the cluster of its
//! *nearest* core neighbor — or it is confirmed as noise.
//!
//! The neighborhoods were captured during initialization (they hold fewer
//! than MinPts points each), so this pass issues at most `MinPts·l`
//! memoized core tests, matching the §III-D cost model.

use dbsvec_geometry::{PointId, PointSet};
use dbsvec_index::{KdTree, RangeIndex};
use dbsvec_obs::{Event, Phase};

use crate::parallel::batch_nearest_cores;
use crate::runner::{CoreStatus, RunState};

/// Resolves every entry of the potential-noise list, then — on sampled
/// fits — attaches every still-unclassified (unsampled) point to the
/// cluster of its nearest discovered core within ε, or confirms it as
/// noise. Both passes apply the same nearest-core rule, which is why the
/// attachment generalization lives in this phase.
pub(crate) fn verify_noise<I: RangeIndex>(state: &mut RunState<'_, I>) {
    state.obs.span_enter(Phase::NoiseVerify);
    let noise_list = std::mem::take(&mut state.noise_list);
    for (i, neighborhood) in &noise_list {
        if !state.labels.is_noise(*i) {
            // Absorbed into a cluster by a later expansion: a border point.
            continue;
        }
        state.stats.noise_candidates += 1;

        let mut nearest: Option<(f64, u32)> = None;
        for &j in neighborhood {
            if j == *i {
                continue;
            }
            // Only clustered neighbors can be core (every core point is
            // clustered by the end of the main loop), so checking the label
            // first avoids wasting core tests on fellow noise points.
            let Some(cid) = state.labels.cluster(j) else {
                continue;
            };
            if !state.is_core(j) {
                continue;
            }
            let d = state.points.squared_distance(*i, j);
            if nearest.map_or(true, |(best, _)| d < best) {
                nearest = Some((d, cid));
            }
        }

        match nearest {
            Some((_, cid)) => state.labels.set_cluster(*i, cid),
            None => state.stats.noise_confirmed += 1,
        }
        state.obs.event(&Event::NoiseVerdict {
            point: *i,
            confirmed: nearest.is_none(),
        });
    }
    state.noise_list = noise_list;
    if state.candidates.is_some() {
        attach_unsampled(state);
    }
    state.obs.span_exit(Phase::NoiseVerify);
}

/// The sampled-mode attachment pass.
///
/// After a sampled main loop the only unclassified points are unsampled
/// ones that no expansion absorbed (candidates all ended clustered or on
/// the noise list). Each gets the out-of-sample classification rule of
/// `crate::predict`: the cluster of the nearest discovered core within ε,
/// or noise. The lookups run against a kd-tree over the discovered cores
/// — built once on the driving thread — and fan out through
/// [`batch_nearest_cores`], so the pass is threaded yet bit-deterministic
/// at every thread count. No ε-range queries against the full index are
/// issued, keeping θ proportional to the subsample, not n.
fn attach_unsampled<I: RangeIndex>(state: &mut RunState<'_, I>) {
    let pending: Vec<PointId> = (0..state.points.len() as PointId)
        .filter(|&i| state.labels.is_unclassified(i))
        .collect();
    if pending.is_empty() {
        return;
    }
    let mut cores = PointSet::new(state.points.dims());
    let mut core_cids: Vec<u32> = Vec::new();
    for (i, s) in state.core_status.iter().enumerate() {
        if matches!(s, CoreStatus::Core) {
            // Every discovered core is clustered by the end of the main
            // loop; the guard keeps an adversarial index from panicking us.
            if let Some(cid) = state.labels.cluster(i as PointId) {
                cores.push(state.points.point(i as PointId));
                core_cids.push(cid);
            }
        }
    }
    let verdicts = if cores.is_empty() {
        vec![None; pending.len()]
    } else {
        let tree = KdTree::build(&cores);
        batch_nearest_cores(
            state.points,
            &cores,
            &tree,
            &core_cids,
            state.config.eps,
            &pending,
            state.threads,
        )
    };
    for (&i, verdict) in pending.iter().zip(&verdicts) {
        state.stats.attachment_candidates += 1;
        if let Some(cid) = verdict {
            state.labels.set_cluster(i, *cid);
            state.stats.attached_points += 1;
        }
        state.obs.event(&Event::Attach {
            point: i,
            attached: verdict.is_some(),
        });
    }
}
