//! Noise verification (paper Algorithm 2 line 16 and §III-B).
//!
//! Because DBSVEC only queries support vectors, a border point near a core
//! point that was never selected as a support vector can finish the main
//! loop still marked as potential noise. The final pass fixes this, and it
//! is what makes Theorems 2 and 3 (border/noise equivalence with DBSCAN)
//! hold: every potential noise point either has a core point in its
//! ε-neighborhood — then it is a border point and joins the cluster of its
//! *nearest* core neighbor — or it is confirmed as noise.
//!
//! The neighborhoods were captured during initialization (they hold fewer
//! than MinPts points each), so this pass issues at most `MinPts·l`
//! memoized core tests, matching the §III-D cost model.

use dbsvec_index::RangeIndex;
use dbsvec_obs::{Event, Phase};

use crate::runner::RunState;

/// Resolves every entry of the potential-noise list.
pub(crate) fn verify_noise<I: RangeIndex>(state: &mut RunState<'_, I>) {
    state.obs.span_enter(Phase::NoiseVerify);
    let noise_list = std::mem::take(&mut state.noise_list);
    for (i, neighborhood) in &noise_list {
        if !state.labels.is_noise(*i) {
            // Absorbed into a cluster by a later expansion: a border point.
            continue;
        }
        state.stats.noise_candidates += 1;

        let mut nearest: Option<(f64, u32)> = None;
        for &j in neighborhood {
            if j == *i {
                continue;
            }
            // Only clustered neighbors can be core (every core point is
            // clustered by the end of the main loop), so checking the label
            // first avoids wasting core tests on fellow noise points.
            let Some(cid) = state.labels.cluster(j) else {
                continue;
            };
            if !state.is_core(j) {
                continue;
            }
            let d = state.points.squared_distance(*i, j);
            if nearest.map_or(true, |(best, _)| d < best) {
                nearest = Some((d, cid));
            }
        }

        match nearest {
            Some((_, cid)) => state.labels.set_cluster(*i, cid),
            None => state.stats.noise_confirmed += 1,
        }
        state.obs.event(&Event::NoiseVerdict {
            point: *i,
            confirmed: nearest.is_none(),
        });
    }
    state.noise_list = noise_list;
    state.obs.span_exit(Phase::NoiseVerify);
}
