//! Candidate-subsample draws for the sampled core-discovery fit mode.
//!
//! DBSCAN++ (Jang & Jiang, 2019) shows that computing density on a
//! uniform or greedy k-center subsample of *candidate cores* preserves
//! cluster recovery while cutting the number of density evaluations from
//! n to the subsample size. DBSVEC composes naturally with that idea:
//! seeding and support-vector expansion restrict themselves to the drawn
//! candidates, and every unsampled point is attached afterwards to its
//! nearest discovered core within ε (or confirmed as noise) — the same
//! rule noise verification already applies to borderline training points.
//!
//! Draws are seeded [`SplitMix64`] streams, so the parallel-determinism
//! contract is untouched: the subsample is a pure function of
//! `(points, SamplingConfig)` and identical at every thread count.

use dbsvec_geometry::rng::SplitMix64;
use dbsvec_geometry::{PointId, PointSet};

use crate::config::{SamplingConfig, SamplingMode};

/// Draws the core-candidate ids for `sampling` over `points`, sorted
/// ascending.
///
/// Returns `None` when the draw covers **every** point — `Exact` mode, a
/// uniform rate of 1.0, or a k-center budget of at least n — so the
/// caller can take the classic full-fit path untouched (bit-identical
/// labels, stats, and traces).
pub fn sample_candidates(points: &PointSet, sampling: &SamplingConfig) -> Option<Vec<PointId>> {
    let n = points.len();
    match sampling.mode {
        SamplingMode::Exact => None,
        SamplingMode::Uniform { rate } => {
            if rate >= 1.0 {
                return None;
            }
            let mut rng = SplitMix64::new(sampling.seed);
            let ids: Vec<PointId> = (0..n as PointId)
                .filter(|_| rng.next_f64() < rate)
                .collect();
            if ids.len() == n {
                None
            } else {
                Some(ids)
            }
        }
        SamplingMode::KCenter { m } => {
            if m >= n {
                return None;
            }
            Some(k_center_ids(points, m, sampling.seed))
        }
    }
}

/// Greedy farthest-first traversal (the classic 2-approximation to the
/// k-center problem): a seeded first center, then repeatedly the point
/// farthest from the chosen set. Ties break toward the lowest id, so the
/// draw is deterministic. Runs in O(m·n) distance evaluations and O(n)
/// memory. With duplicate coordinates the traversal can exhaust the
/// distinct points early, in which case fewer than `m` ids come back.
fn k_center_ids(points: &PointSet, m: usize, seed: u64) -> Vec<PointId> {
    let n = points.len();
    debug_assert!(m >= 1 && m < n);
    let mut rng = SplitMix64::new(seed);
    let first = rng.next_below(n as u64) as PointId;
    let mut chosen = vec![first];
    let mut min_sq: Vec<f64> = (0..n as PointId)
        .map(|i| points.squared_distance(i, first))
        .collect();
    while chosen.len() < m {
        let mut best: Option<(f64, PointId)> = None;
        for (i, &d) in min_sq.iter().enumerate() {
            if best.map_or(true, |(bd, _)| d > bd) {
                best = Some((d, i as PointId));
            }
        }
        let (best_d, best_i) = best.expect("n >= 2 here, so an argmax exists");
        if best_d <= 0.0 {
            break; // every remaining point duplicates a chosen center
        }
        chosen.push(best_i);
        for i in 0..n as PointId {
            let d = points.squared_distance(i, best_i);
            if d < min_sq[i as usize] {
                min_sq[i as usize] = d;
            }
        }
    }
    chosen.sort_unstable();
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SamplingConfig;

    fn line(n: usize) -> PointSet {
        let mut ps = PointSet::new(1);
        for i in 0..n {
            ps.push(&[i as f64]);
        }
        ps
    }

    #[test]
    fn exact_mode_draws_nothing() {
        assert_eq!(
            sample_candidates(&line(10), &SamplingConfig::default()),
            None
        );
    }

    #[test]
    fn uniform_rate_one_covers_everything() {
        let cfg = SamplingConfig {
            mode: SamplingMode::Uniform { rate: 1.0 },
            seed: 7,
        };
        assert_eq!(sample_candidates(&line(100), &cfg), None);
    }

    #[test]
    fn uniform_draw_is_seed_deterministic_and_sorted() {
        let ps = line(500);
        let cfg = SamplingConfig {
            mode: SamplingMode::Uniform { rate: 0.3 },
            seed: 42,
        };
        let a = sample_candidates(&ps, &cfg).expect("rate 0.3 leaves gaps");
        let b = sample_candidates(&ps, &cfg).unwrap();
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] < w[1]), "sorted, no duplicates");
        // The draw should land near rate·n without being degenerate.
        assert!(a.len() > 100 && a.len() < 200, "got {}", a.len());
        let other = SamplingConfig { seed: 43, ..cfg };
        assert_ne!(sample_candidates(&ps, &other).unwrap(), a);
    }

    #[test]
    fn kcenter_budget_at_or_above_n_covers_everything() {
        let ps = line(8);
        for m in [8usize, 9, 100] {
            let cfg = SamplingConfig {
                mode: SamplingMode::KCenter { m },
                seed: 1,
            };
            assert_eq!(sample_candidates(&ps, &cfg), None, "m={m}");
        }
    }

    #[test]
    fn kcenter_spreads_over_the_extent() {
        let ps = line(100);
        let cfg = SamplingConfig {
            mode: SamplingMode::KCenter { m: 5 },
            seed: 3,
        };
        let ids = sample_candidates(&ps, &cfg).unwrap();
        assert_eq!(ids.len(), 5);
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
        // Farthest-first on a line must pick both endpoints by round two.
        assert!(ids.contains(&0) || ids.contains(&99));
        // Deterministic under the same seed.
        assert_eq!(sample_candidates(&ps, &cfg).unwrap(), ids);
    }

    #[test]
    fn kcenter_stops_early_on_duplicates() {
        let mut ps = PointSet::new(1);
        for _ in 0..6 {
            ps.push(&[1.0]);
        }
        ps.push(&[2.0]);
        let cfg = SamplingConfig {
            mode: SamplingMode::KCenter { m: 5 },
            seed: 9,
        };
        // Only two distinct coordinates exist: the traversal exhausts them.
        let ids = sample_candidates(&ps, &cfg).unwrap();
        assert_eq!(ids.len(), 2);
    }
}
