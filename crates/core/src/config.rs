//! DBSVEC configuration, including the paper's ablation toggles.

use dbsvec_svdd::{KernelWidthStrategy, SmoOptions, WeightOptions, DEFAULT_LEARNING_THRESHOLD};

/// How the penalty fraction ν is chosen per SVDD training (paper §IV-C).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum NuStrategy {
    /// The paper's adaptive rule `ν* = d·√(log_MinPts ñ)/ñ` (Eq. 20) —
    /// the plain "DBSVEC" configuration of the experiments.
    Optimal,
    /// The minimum `ν = 1/ñ` — the paper's `DBSVEC_min` variant (Table III),
    /// trading accuracy for the fewest support vectors.
    Minimal,
    /// A fixed ν, used by the Fig. 8 penalty-factor sweep. Clamped to
    /// `[1/ñ, 1]` at training time.
    Fixed(f64),
}

/// Thread budget for the parallel fit path.
///
/// Three fit stages fan out across scoped threads against shared immutable
/// state: the per-round batch of range queries on core support vectors,
/// the SMO solver's kernel-row computation, and (via
/// `dbsvec_index::k_distance_profile_threaded`) the k-dist parameter scan.
/// Results are **bit identical at every thread count** — workers only
/// evaluate pure functions, and all state mutation replays on the driving
/// thread in deterministic order. `threads == 1` is the escape hatch that
/// takes the exact sequential code path.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Worker threads; `0` (the default) means all available cores.
    pub threads: usize,
}

impl ParallelConfig {
    /// A fixed thread count (`0` = auto).
    pub fn fixed(threads: usize) -> Self {
        Self { threads }
    }

    /// The effective worker count: `0` resolves to the machine's available
    /// parallelism (1 when it cannot be determined).
    pub fn resolve(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.threads
        }
    }
}

/// How core candidates are drawn for the sampled fit mode (DBSCAN++-style
/// subsampled core discovery; see `crate::sample`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SamplingMode {
    /// Every point is a core candidate — the classic full fit.
    Exact,
    /// Each point is a candidate independently with probability `rate`
    /// (expected subsample size `rate·n`).
    Uniform {
        /// Per-point inclusion probability in `(0, 1]`.
        rate: f64,
    },
    /// Greedy farthest-first (k-center) subset of `m` candidates, the
    /// geometry-aware draw DBSCAN++ recommends for unbalanced densities.
    KCenter {
        /// Candidate budget. `m >= n` degenerates to `Exact`.
        m: usize,
    },
}

/// Default seed for sampled draws, matching the bench harness discipline.
pub const DEFAULT_SAMPLING_SEED: u64 = 20190401;

/// Seeded core-candidate subsampling for the fit.
///
/// The draw is a pure function of `(points, SamplingConfig)` via the
/// workspace's SplitMix64 stream, so sampled fits keep the parallel
/// determinism contract: labels, stats, and traces are bit-identical at
/// every thread count, and a draw that covers all n points (including
/// `Uniform { rate: 1.0 }`) takes the exact fit path untouched.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SamplingConfig {
    /// How the candidate set is drawn.
    pub mode: SamplingMode,
    /// SplitMix64 seed for the draw.
    pub seed: u64,
}

impl Default for SamplingConfig {
    fn default() -> Self {
        Self {
            mode: SamplingMode::Exact,
            seed: DEFAULT_SAMPLING_SEED,
        }
    }
}

/// Full configuration of a DBSVEC run.
///
/// [`DbsvecConfig::new`] gives the paper's recommended settings; the
/// remaining fields expose every knob the evaluation section sweeps:
///
/// | field | paper experiment |
/// |---|---|
/// | `nu` | Fig. 8 (ν sweep), Table III (`DBSVEC_min`) |
/// | `weighted` = false | Fig. 9a `DBSVEC\WF` |
/// | `incremental` = false | Fig. 9a/9b `DBSVEC\IL` |
/// | `kernel_width` = `RandomRange` | Fig. 9b `DBSVEC\OK` |
/// | `learning_threshold` | §IV-B.1 (T in 2–4, default 3) |
#[derive(Clone, Debug)]
pub struct DbsvecConfig {
    /// Range-query radius ε.
    pub eps: f64,
    /// Density threshold MinPts (a point is core when its closed
    /// ε-neighborhood holds at least this many points, itself included).
    pub min_pts: usize,
    /// Penalty-fraction strategy.
    pub nu: NuStrategy,
    /// `T`: trainings a point may participate in before eviction from the
    /// SVDD target set. Ignored when `incremental` is false.
    pub learning_threshold: u32,
    /// Adaptive penalty weights (Eq. 7). `false` reproduces `DBSVEC\WF`.
    pub weighted: bool,
    /// Weight tuning (memory factor λ, weight floor).
    pub weight_options: WeightOptions,
    /// Incremental learning (§IV-B.1). `false` reproduces `DBSVEC\IL`:
    /// every training sees the whole sub-cluster.
    pub incremental: bool,
    /// Kernel width selection (§IV-B.2). `RandomRange` reproduces
    /// `DBSVEC\OK`.
    pub kernel_width: KernelWidthStrategy,
    /// SMO solver options. The solver's `threads` field is overridden by
    /// [`DbsvecConfig::parallel`] during a fit, so one knob drives the
    /// whole parallel path.
    pub smo: SmoOptions,
    /// Thread budget for the parallel fit path (batched SV range queries
    /// and SMO kernel rows). Defaults to all available cores; results are
    /// identical at every setting.
    pub parallel: ParallelConfig,
    /// Core-candidate subsampling (default: `Exact`, the full fit).
    /// Seeding and support-vector expansion restrict themselves to the
    /// drawn candidates; unsampled points are attached to their nearest
    /// discovered core within ε afterwards or confirmed as noise.
    pub sampling: SamplingConfig,
}

impl DbsvecConfig {
    /// The paper's recommended configuration for a given ε and MinPts:
    /// adaptive ν*, adaptive weights, incremental learning with `T = 3`,
    /// and the `σ = r/√2` kernel width rule.
    ///
    /// # Panics
    ///
    /// Panics unless `eps` is positive and finite and `min_pts >= 1`.
    pub fn new(eps: f64, min_pts: usize) -> Self {
        assert!(
            eps.is_finite() && eps > 0.0,
            "eps must be positive and finite, got {eps}"
        );
        assert!(min_pts >= 1, "MinPts must be at least 1");
        Self {
            eps,
            min_pts,
            nu: NuStrategy::Optimal,
            learning_threshold: DEFAULT_LEARNING_THRESHOLD,
            weighted: true,
            weight_options: WeightOptions::default(),
            incremental: true,
            kernel_width: KernelWidthStrategy::CenterRadius,
            smo: SmoOptions::default(),
            parallel: ParallelConfig::default(),
            sampling: SamplingConfig::default(),
        }
    }

    /// Sets the fit thread budget (`0` = all available cores, `1` = the
    /// exact sequential code path). Labels, core sets, statistics, and
    /// observer traces are bit-identical at every setting.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.parallel = ParallelConfig::fixed(threads);
        self
    }

    /// Restricts core discovery to a uniform candidate subsample: each
    /// point is a candidate with probability `rate`, drawn from the seeded
    /// SplitMix64 stream. `rate = 1.0` is exactly the full fit.
    ///
    /// # Panics
    ///
    /// Panics unless `rate` is finite and in `(0, 1]`.
    pub fn with_uniform_sampling(mut self, rate: f64, seed: u64) -> Self {
        assert!(
            rate.is_finite() && rate > 0.0 && rate <= 1.0,
            "sampling rate must be in (0, 1], got {rate}"
        );
        self.sampling = SamplingConfig {
            mode: SamplingMode::Uniform { rate },
            seed,
        };
        self
    }

    /// Restricts core discovery to a greedy k-center (farthest-first)
    /// subsample of `m` candidates. `m >= n` degenerates to the full fit.
    ///
    /// # Panics
    ///
    /// Panics when `m` is zero.
    pub fn with_kcenter_sampling(mut self, m: usize, seed: u64) -> Self {
        assert!(m >= 1, "k-center budget must be at least 1");
        self.sampling = SamplingConfig {
            mode: SamplingMode::KCenter { m },
            seed,
        };
        self
    }

    /// Switches to the `DBSVEC_min` penalty setting (`ν = 1/ñ`).
    pub fn minimal_nu(mut self) -> Self {
        self.nu = NuStrategy::Minimal;
        self
    }

    /// Fixes ν for penalty-factor sweeps (Fig. 8).
    pub fn with_nu(mut self, nu: f64) -> Self {
        assert!(nu > 0.0 && nu <= 1.0, "nu must be in (0, 1], got {nu}");
        self.nu = NuStrategy::Fixed(nu);
        self
    }

    /// Disables adaptive penalty weights (`DBSVEC\WF` ablation).
    pub fn without_weights(mut self) -> Self {
        self.weighted = false;
        self
    }

    /// Disables incremental learning (`DBSVEC\IL` ablation).
    pub fn without_incremental_learning(mut self) -> Self {
        self.incremental = false;
        self
    }

    /// Replaces the kernel-width rule with a seeded random draw from the
    /// pairwise-distance range (`DBSVEC\OK` ablation).
    pub fn with_random_kernel_width(mut self, seed: u64) -> Self {
        self.kernel_width = KernelWidthStrategy::RandomRange { seed };
        self
    }

    /// Overrides the learning threshold `T`.
    pub fn with_learning_threshold(mut self, t: u32) -> Self {
        self.learning_threshold = t;
        self
    }

    /// Escape hatch: disables both cross-round α warm starts and active-set
    /// shrinking, so every expansion round solves its SVDD from scratch the
    /// way the pre-incremental solver did. (The σ-invariant distance-row
    /// cache still persists across rounds — it reproduces kernel values
    /// exactly, so there is nothing to opt out of.)
    pub fn cold_start(mut self) -> Self {
        self.smo.warm_start = false;
        self.smo.shrinking = false;
        self
    }

    /// Disables active-set shrinking only, keeping warm starts.
    pub fn without_shrinking(mut self) -> Self {
        self.smo.shrinking = false;
        self
    }

    /// Uses the literal Eq. 5 kernel distance for the penalty weights
    /// instead of the O(ñ) centroid proxy (see
    /// [`dbsvec_svdd::WeightOptions::exact_kernel_distance`]). Quadratic in
    /// the target size; exposed for the weight-proxy ablation bench.
    pub fn with_exact_kernel_weights(mut self) -> Self {
        self.weight_options.exact_kernel_distance = true;
        self
    }

    /// Resolves the ν strategy for a target set of size `target_size`.
    pub(crate) fn resolve_nu(&self, dims: usize, target_size: usize) -> f64 {
        let n = target_size.max(1);
        match self.nu {
            NuStrategy::Optimal => dbsvec_svdd::optimal_nu(dims, n, self.min_pts.max(2)),
            NuStrategy::Minimal => dbsvec_svdd::params::minimal_nu(n),
            NuStrategy::Fixed(nu) => nu.clamp(1.0 / n as f64, 1.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_configuration_matches_paper() {
        let c = DbsvecConfig::new(1.5, 10);
        assert_eq!(c.eps, 1.5);
        assert_eq!(c.min_pts, 10);
        assert_eq!(c.nu, NuStrategy::Optimal);
        assert_eq!(c.learning_threshold, 3);
        assert!(c.weighted);
        assert!(c.incremental);
        assert_eq!(c.kernel_width, KernelWidthStrategy::CenterRadius);
        assert_eq!(c.parallel, ParallelConfig::default());
        assert_eq!(c.parallel.threads, 0);
        assert_eq!(c.sampling.mode, SamplingMode::Exact);
        assert_eq!(c.sampling.seed, DEFAULT_SAMPLING_SEED);
        // Warm starts and shrinking are on by default.
        assert!(c.smo.warm_start);
        assert!(c.smo.shrinking);
    }

    #[test]
    fn cold_start_disables_warm_start_and_shrinking() {
        let c = DbsvecConfig::new(1.0, 5).cold_start();
        assert!(!c.smo.warm_start);
        assert!(!c.smo.shrinking);
        let s = DbsvecConfig::new(1.0, 5).without_shrinking();
        assert!(s.smo.warm_start);
        assert!(!s.smo.shrinking);
    }

    #[test]
    fn thread_budget_resolves() {
        assert_eq!(
            DbsvecConfig::new(1.0, 5).with_threads(3).parallel.resolve(),
            3
        );
        assert_eq!(
            DbsvecConfig::new(1.0, 5).with_threads(1).parallel.resolve(),
            1
        );
        // Auto resolves to at least one worker.
        assert!(DbsvecConfig::new(1.0, 5).parallel.resolve() >= 1);
    }

    #[test]
    fn ablation_builders_flip_the_right_toggles() {
        let c = DbsvecConfig::new(1.0, 5)
            .without_weights()
            .without_incremental_learning()
            .with_random_kernel_width(7)
            .with_learning_threshold(2);
        assert!(!c.weighted);
        assert!(!c.incremental);
        assert_eq!(c.kernel_width, KernelWidthStrategy::RandomRange { seed: 7 });
        assert_eq!(c.learning_threshold, 2);
    }

    #[test]
    fn exact_kernel_weights_toggle() {
        let c = DbsvecConfig::new(1.0, 5).with_exact_kernel_weights();
        assert!(c.weight_options.exact_kernel_distance);
        assert!(
            !DbsvecConfig::new(1.0, 5)
                .weight_options
                .exact_kernel_distance
        );
    }

    #[test]
    fn resolve_nu_fixed_is_clamped() {
        let c = DbsvecConfig::new(1.0, 5).with_nu(0.9);
        // With ñ = 2, 1/ñ = 0.5 <= 0.9 <= 1: unchanged.
        assert!((c.resolve_nu(2, 2) - 0.9).abs() < 1e-12);
        // Fixed below 1/ñ clamps up.
        let c2 = DbsvecConfig::new(1.0, 5).with_nu(0.001);
        assert!((c2.resolve_nu(2, 10) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn resolve_nu_minimal_is_one_over_n() {
        let c = DbsvecConfig::new(1.0, 5).minimal_nu();
        assert!((c.resolve_nu(3, 40) - 1.0 / 40.0).abs() < 1e-15);
    }

    #[test]
    fn sampling_builders_set_mode_and_seed() {
        let u = DbsvecConfig::new(1.0, 5).with_uniform_sampling(0.25, 7);
        assert_eq!(u.sampling.mode, SamplingMode::Uniform { rate: 0.25 });
        assert_eq!(u.sampling.seed, 7);
        let k = DbsvecConfig::new(1.0, 5).with_kcenter_sampling(40, 11);
        assert_eq!(k.sampling.mode, SamplingMode::KCenter { m: 40 });
        assert_eq!(k.sampling.seed, 11);
    }

    #[test]
    #[should_panic(expected = "sampling rate must be in (0, 1]")]
    fn rejects_zero_sampling_rate() {
        let _ = DbsvecConfig::new(1.0, 5).with_uniform_sampling(0.0, 1);
    }

    #[test]
    #[should_panic(expected = "sampling rate must be in (0, 1]")]
    fn rejects_sampling_rate_above_one() {
        let _ = DbsvecConfig::new(1.0, 5).with_uniform_sampling(1.5, 1);
    }

    #[test]
    #[should_panic(expected = "k-center budget must be at least 1")]
    fn rejects_zero_kcenter_budget() {
        let _ = DbsvecConfig::new(1.0, 5).with_kcenter_sampling(0, 1);
    }

    #[test]
    #[should_panic(expected = "eps must be positive")]
    fn rejects_non_positive_eps() {
        let _ = DbsvecConfig::new(0.0, 5);
    }

    #[test]
    #[should_panic(expected = "nu must be in")]
    fn rejects_nu_above_one() {
        let _ = DbsvecConfig::new(1.0, 5).with_nu(1.5);
    }

    #[test]
    fn min_pts_one_resolves_nu_without_panicking() {
        let c = DbsvecConfig::new(1.0, 1);
        let nu = c.resolve_nu(2, 100);
        assert!(nu > 0.0 && nu <= 1.0);
    }
}
