//! Dynamic connectivity over the core graph: a spanning forest with
//! replacement-edge search.
//!
//! [`crate::UnionFind`] answers "same component?" under edge *insertions*
//! only — exactly what the fit's sub-cluster merging needs. The serving
//! engine's decremental maintenance also needs edge and vertex
//! **deletions**: removing or demoting a core point may disconnect its
//! cluster, and the engine must discover the split (and each resulting
//! piece) exactly. [`Connectivity`] generalizes the union–find into a
//! structure that supports both directions:
//!
//! * every component is spanned by a forest (`tree` adjacency);
//! * edges that close a cycle are parked as *non-tree* edges (`extra`);
//! * deleting a vertex tears its incident tree edges out of the forest,
//!   provisionally splitting the component into pieces, then searches the
//!   pieces' non-tree edges for **replacement edges** that reconnect them.
//!   Pieces still unconnected after the search are genuine splits.
//!
//! # Amortized-cost accounting
//!
//! Insertions use the classic smaller-half argument: a merge relabels
//! only the smaller component, so each vertex is relabeled at most
//! `log₂ n` times over any insertion sequence — `O(n log n)` total, plus
//! `O(deg)` per duplicate-edge check. Deletions are **not** polylog: one
//! `remove_vertex` costs `O(|component| + incident edges)` — a BFS over
//! the component's tree edges to find the pieces, a scan of the pieces'
//! non-tree edges for replacements, and a relabel of every surviving
//! vertex. This is the right trade for DBSVEC: the paper's core-SV
//! structure keeps the core graph small relative to the dataset (the
//! whole point of support vector expansion is to query few points), so an
//! exact `O(|component|)` repair beats the constant factors of a
//! fully-dynamic structure at the component sizes the engine maintains.
//! When components grow past that regime, the upgrade path is Euler-tour
//! sequences over the spanning forest (dynamic DBSCAN via ETS,
//! arXiv:2503.08246), which makes deletions `O(polylog n)` amortized
//! behind the same interface.
//!
//! Determinism: every operation is a pure function of the operation
//! sequence — BFS visits adjacency lists in insertion order, replacement
//! search scans pieces in discovery order, and piece representatives are
//! the minimum vertex id — so identical op sequences yield identical
//! structures, labels, and split reports.

/// A spanning-forest dynamic-connectivity structure over dense `u32`
/// vertex ids.
///
/// Vertices are allocated sequentially by [`Connectivity::add_vertex`]
/// and torn down by [`Connectivity::remove_vertex`]; ids are never
/// reused (the engine compacts by rebuilding).
#[derive(Clone, Debug, Default)]
pub struct Connectivity {
    /// Spanning-forest adjacency (each edge appears in both endpoint
    /// lists).
    tree: Vec<Vec<u32>>,
    /// Non-tree (cycle-closing) adjacency, mined for replacement edges
    /// when a deletion splits the forest.
    extra: Vec<Vec<u32>>,
    /// Component representative per vertex, maintained eagerly — `rep`
    /// is a field read, never a pointer chase.
    comp: Vec<u32>,
    /// Component size, meaningful at representatives only.
    size: Vec<u32>,
    alive: Vec<bool>,
    num_components: usize,
}

impl Connectivity {
    /// An empty structure.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total vertices ever allocated (dead ones included).
    pub fn len(&self) -> usize {
        self.comp.len()
    }

    /// Whether no vertex was ever allocated.
    pub fn is_empty(&self) -> bool {
        self.comp.is_empty()
    }

    /// Whether `v` is currently alive.
    pub fn is_alive(&self, v: u32) -> bool {
        self.alive[v as usize]
    }

    /// Current number of connected components over the alive vertices.
    pub fn num_components(&self) -> usize {
        self.num_components
    }

    /// Allocates a fresh singleton vertex and returns its id.
    pub fn add_vertex(&mut self) -> u32 {
        let v = self.comp.len() as u32;
        self.tree.push(Vec::new());
        self.extra.push(Vec::new());
        self.comp.push(v);
        self.size.push(1);
        self.alive.push(true);
        self.num_components += 1;
        v
    }

    /// The representative vertex of `v`'s component (the minimum alive
    /// vertex id after deletions; an arbitrary but deterministic member
    /// after pure insertions).
    ///
    /// # Panics
    ///
    /// Panics when `v` is dead.
    pub fn rep(&self, v: u32) -> u32 {
        assert!(self.alive[v as usize], "rep() on dead vertex {v}");
        self.comp[v as usize]
    }

    /// Whether alive vertices `a` and `b` share a component.
    pub fn same(&self, a: u32, b: u32) -> bool {
        self.rep(a) == self.rep(b)
    }

    /// Number of vertices in `v`'s component.
    pub fn component_size(&self, v: u32) -> usize {
        self.size[self.rep(v) as usize] as usize
    }

    /// Adds the undirected edge `(u, v)`. Returns `true` when the edge
    /// merged two components (it joined the spanning forest), `false`
    /// when the endpoints were already connected (the edge is parked as
    /// a non-tree edge; exact duplicates are dropped).
    ///
    /// # Panics
    ///
    /// Panics on a self-loop or a dead endpoint.
    pub fn add_edge(&mut self, u: u32, v: u32) -> bool {
        assert_ne!(u, v, "self-loop on vertex {u}");
        assert!(
            self.alive[u as usize] && self.alive[v as usize],
            "edge ({u}, {v}) touches a dead vertex"
        );
        let (ru, rv) = (self.comp[u as usize], self.comp[v as usize]);
        if ru == rv {
            // Cycle edge: park it (once) for future replacement searches.
            if !self.tree[u as usize].contains(&v) && !self.extra[u as usize].contains(&v) {
                self.extra[u as usize].push(v);
                self.extra[v as usize].push(u);
            }
            return false;
        }
        // Relabel the smaller side (the amortization argument above);
        // ties keep the smaller representative id.
        let keep_u = (self.size[ru as usize], rv) > (self.size[rv as usize], ru);
        let (keep, absorb_from) = if keep_u { (ru, v) } else { (rv, u) };
        self.size[keep as usize] += self.size[self.comp[absorb_from as usize] as usize];
        let mut queue = vec![absorb_from];
        self.comp[absorb_from as usize] = keep;
        let mut head = 0;
        while head < queue.len() {
            let w = queue[head];
            head += 1;
            for i in 0..self.tree[w as usize].len() {
                let next = self.tree[w as usize][i];
                if self.comp[next as usize] != keep {
                    self.comp[next as usize] = keep;
                    queue.push(next);
                }
            }
        }
        self.tree[u as usize].push(v);
        self.tree[v as usize].push(u);
        self.num_components -= 1;
        true
    }

    /// Deletes vertex `v` and repairs the forest. Returns the sorted
    /// representatives (minimum vertex id each) of the pieces `v`'s
    /// component was left in: an empty vector when `v` was a singleton
    /// (the component vanished), one representative when the component
    /// survived connected, two or more on a genuine split.
    ///
    /// # Panics
    ///
    /// Panics when `v` is already dead.
    pub fn remove_vertex(&mut self, v: u32) -> Vec<u32> {
        assert!(self.alive[v as usize], "remove_vertex() on dead vertex {v}");
        self.alive[v as usize] = false;
        let tree_nbrs = std::mem::take(&mut self.tree[v as usize]);
        let extra_nbrs = std::mem::take(&mut self.extra[v as usize]);
        for &n in &tree_nbrs {
            self.tree[n as usize].retain(|&w| w != v);
        }
        for &n in &extra_nbrs {
            self.extra[n as usize].retain(|&w| w != v);
        }
        if tree_nbrs.is_empty() {
            // The forest spans every component, so no tree edge means v
            // was alone: its component vanishes outright.
            self.num_components -= 1;
            return Vec::new();
        }

        // Provisional pieces: BFS over the remaining tree edges from each
        // former tree neighbor of v.
        const UNSEEN: u32 = u32::MAX;
        let mut piece_of = vec![UNSEEN; self.comp.len()];
        let mut pieces: Vec<Vec<u32>> = Vec::new();
        for &start in &tree_nbrs {
            if piece_of[start as usize] != UNSEEN {
                continue;
            }
            let id = pieces.len() as u32;
            let mut members = vec![start];
            piece_of[start as usize] = id;
            let mut head = 0;
            while head < members.len() {
                let w = members[head];
                head += 1;
                for i in 0..self.tree[w as usize].len() {
                    let next = self.tree[w as usize][i];
                    if piece_of[next as usize] == UNSEEN {
                        piece_of[next as usize] = id;
                        members.push(next);
                    }
                }
            }
            pieces.push(members);
        }

        // Replacement-edge search: a non-tree edge crossing two pieces
        // reconnects them — promote it into the forest. A tiny DSU over
        // the piece ids tracks which pieces are already rejoined.
        let mut dsu: Vec<u32> = (0..pieces.len() as u32).collect();
        fn find(dsu: &mut [u32], mut x: u32) -> u32 {
            while dsu[x as usize] != x {
                dsu[x as usize] = dsu[dsu[x as usize] as usize];
                x = dsu[x as usize];
            }
            x
        }
        for piece in &pieces {
            for &w in piece {
                let mut i = 0;
                while i < self.extra[w as usize].len() {
                    let x = self.extra[w as usize][i];
                    let (pw, px) = (find(&mut dsu, piece_of[w as usize]), {
                        find(&mut dsu, piece_of[x as usize])
                    });
                    if pw == px {
                        i += 1;
                        continue;
                    }
                    // Promote (w, x) to a tree edge and rejoin the pieces.
                    self.extra[w as usize].swap_remove(i);
                    self.extra[x as usize].retain(|&y| y != w);
                    self.tree[w as usize].push(x);
                    self.tree[x as usize].push(w);
                    dsu[pw.max(px) as usize] = pw.min(px);
                }
            }
        }

        // Relabel every survivor: each rejoined group becomes one
        // component represented by its minimum vertex id.
        let mut groups: Vec<(u32, Vec<u32>)> = Vec::new();
        let mut group_of = vec![UNSEEN; pieces.len()];
        for (p, piece) in pieces.iter().enumerate() {
            let root = find(&mut dsu, p as u32);
            if group_of[root as usize] == UNSEEN {
                group_of[root as usize] = groups.len() as u32;
                groups.push((u32::MAX, Vec::new()));
            }
            let g = &mut groups[group_of[root as usize] as usize];
            for &w in piece {
                g.0 = g.0.min(w);
                g.1.push(w);
            }
        }
        for (rep, members) in &groups {
            for &w in members {
                self.comp[w as usize] = *rep;
            }
            self.size[*rep as usize] = members.len() as u32;
        }
        self.num_components += groups.len() - 1;
        let mut reps: Vec<u32> = groups.iter().map(|(rep, _)| *rep).collect();
        reps.sort_unstable();
        reps
    }

    /// Visits every edge once (`u < v`), tree edges flagged `true` — the
    /// hook the engine's storage compaction uses to rebuild the structure
    /// under remapped vertex ids.
    pub fn for_each_edge(&self, mut f: impl FnMut(u32, u32, bool)) {
        for u in 0..self.comp.len() as u32 {
            for &v in &self.tree[u as usize] {
                if u < v {
                    f(u, v, true);
                }
            }
            for &v in &self.extra[u as usize] {
                if u < v {
                    f(u, v, false);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: u32) -> Connectivity {
        let mut c = Connectivity::new();
        for _ in 0..n {
            c.add_vertex();
        }
        for v in 1..n {
            assert!(c.add_edge(v - 1, v));
        }
        c
    }

    #[test]
    fn vertices_start_as_singletons() {
        let mut c = Connectivity::new();
        let a = c.add_vertex();
        let b = c.add_vertex();
        assert_eq!((a, b), (0, 1));
        assert_eq!(c.num_components(), 2);
        assert!(!c.same(a, b));
        assert_eq!(c.component_size(a), 1);
    }

    #[test]
    fn edges_merge_and_cycles_park() {
        let mut c = path(3);
        assert_eq!(c.num_components(), 1);
        assert!(c.same(0, 2));
        assert!(!c.add_edge(0, 2), "cycle edge must not merge");
        assert!(!c.add_edge(0, 2), "duplicate cycle edge is dropped");
        assert_eq!(c.component_size(1), 3);
    }

    #[test]
    fn removing_a_cut_vertex_splits() {
        let mut c = path(5);
        let reps = c.remove_vertex(2);
        assert_eq!(reps, vec![0, 3], "two pieces, min-id representatives");
        assert_eq!(c.num_components(), 2);
        assert!(c.same(0, 1));
        assert!(c.same(3, 4));
        assert!(!c.same(1, 3));
        assert!(!c.is_alive(2));
    }

    #[test]
    fn replacement_edge_prevents_a_split() {
        // A path 0-1-2-3-4 plus the chord (1, 3): removing 2 must find
        // the chord and keep the component whole.
        let mut c = path(5);
        assert!(!c.add_edge(1, 3));
        let reps = c.remove_vertex(2);
        assert_eq!(reps.len(), 1);
        assert_eq!(c.num_components(), 1);
        assert!(c.same(0, 4));
    }

    #[test]
    fn removing_a_singleton_vanishes_its_component() {
        let mut c = Connectivity::new();
        c.add_vertex();
        c.add_vertex();
        assert_eq!(c.remove_vertex(1), Vec::<u32>::new());
        assert_eq!(c.num_components(), 1);
    }

    #[test]
    fn removing_a_leaf_keeps_one_piece() {
        let mut c = path(4);
        let reps = c.remove_vertex(3);
        assert_eq!(reps, vec![0]);
        assert_eq!(c.num_components(), 1);
    }

    #[test]
    fn star_center_removal_splits_into_every_leaf() {
        let mut c = Connectivity::new();
        for _ in 0..5 {
            c.add_vertex();
        }
        for leaf in 1..5 {
            c.add_edge(0, leaf);
        }
        let reps = c.remove_vertex(0);
        assert_eq!(reps, vec![1, 2, 3, 4]);
        assert_eq!(c.num_components(), 4);
    }

    #[test]
    fn matches_a_naive_oracle_under_random_ops() {
        // Deterministic splitmix64 stream driving interleaved edge adds
        // and vertex removals; after every op, component labels must
        // match a from-scratch BFS over a mirrored edge set.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        let n = 24u32;
        let mut c = Connectivity::new();
        for _ in 0..n {
            c.add_vertex();
        }
        let mut alive: Vec<u32> = (0..n).collect();
        let mut edges: Vec<(u32, u32)> = Vec::new();
        for _ in 0..200 {
            if alive.len() >= 2 && (alive.len() <= 3 || next() % 3 != 0) {
                let u = alive[(next() % alive.len() as u64) as usize];
                let v = alive[(next() % alive.len() as u64) as usize];
                if u != v {
                    c.add_edge(u, v);
                    if !edges.contains(&(u.min(v), u.max(v))) {
                        edges.push((u.min(v), u.max(v)));
                    }
                }
            } else if !alive.is_empty() {
                let v = alive[(next() % alive.len() as u64) as usize];
                c.remove_vertex(v);
                alive.retain(|&w| w != v);
                edges.retain(|&(a, b)| a != v && b != v);
            }
            // Oracle: BFS components over the mirrored edge set.
            let mut label = vec![u32::MAX; n as usize];
            let mut components = 0;
            for &start in &alive {
                if label[start as usize] != u32::MAX {
                    continue;
                }
                let id = components;
                components += 1;
                let mut queue = vec![start];
                label[start as usize] = id;
                while let Some(w) = queue.pop() {
                    for &(a, b) in &edges {
                        let other = if a == w {
                            b
                        } else if b == w {
                            a
                        } else {
                            continue;
                        };
                        if label[other as usize] == u32::MAX {
                            label[other as usize] = id;
                            queue.push(other);
                        }
                    }
                }
            }
            assert_eq!(c.num_components(), components as usize);
            for &a in &alive {
                for &b in &alive {
                    assert_eq!(
                        c.same(a, b),
                        label[a as usize] == label[b as usize],
                        "vertices {a} and {b} disagree with the oracle"
                    );
                }
            }
        }
    }

    #[test]
    fn for_each_edge_round_trips_the_structure() {
        let mut c = path(6);
        c.add_edge(0, 5);
        c.add_edge(1, 4);
        c.remove_vertex(2);
        let mut rebuilt = Connectivity::new();
        for _ in 0..6 {
            rebuilt.add_vertex();
        }
        c.for_each_edge(|u, v, _| {
            rebuilt.add_edge(u, v);
        });
        assert_eq!(rebuilt.num_components(), c.num_components() + 1);
        for a in [0u32, 1, 3, 4, 5] {
            for b in [0u32, 1, 3, 4, 5] {
                assert_eq!(rebuilt.same(a, b), c.same(a, b));
            }
        }
    }
}
