//! Disjoint-set forest for sub-cluster merging.
//!
//! DBSVEC allocates a fresh raw cluster id per seed and merges ids when an
//! overlapping core point connects two sub-clusters (paper Lemma 3). A
//! union–find with union-by-size and path halving makes every merge
//! effectively O(1), so sub-cluster merging contributes only the `m` range
//! queries of the paper's cost model, not data-structure overhead.

/// Union–find over dense ids `0..len`.
#[derive(Clone, Debug, Default)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl UnionFind {
    /// Creates an empty forest.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a new singleton set and returns its id.
    pub fn make_set(&mut self) -> u32 {
        let id = self.parent.len() as u32;
        self.parent.push(id);
        self.size.push(1);
        id
    }

    /// Number of ids ever created (not the number of disjoint sets).
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether no sets exist.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Representative of `x`'s set, with path halving.
    pub fn find(&mut self, x: u32) -> u32 {
        let mut x = x;
        while self.parent[x as usize] != x {
            let grandparent = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grandparent;
            x = grandparent;
        }
        x
    }

    /// Merges the sets of `a` and `b`; returns the surviving representative.
    pub fn union(&mut self, a: u32, b: u32) -> u32 {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return ra;
        }
        let (big, small) = if self.size[ra as usize] >= self.size[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
        big
    }

    /// Whether `a` and `b` are currently in the same set.
    pub fn same(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Maps every id to a compact representative index `0..#sets`, in order
    /// of first appearance of each set's root.
    pub fn compact_labels(&mut self) -> (Vec<u32>, usize) {
        let n = self.parent.len();
        let mut mapping = vec![u32::MAX; n];
        let mut next = 0;
        let mut out = vec![0; n];
        for x in 0..n as u32 {
            let root = self.find(x);
            if mapping[root as usize] == u32::MAX {
                mapping[root as usize] = next;
                next += 1;
            }
            out[x as usize] = mapping[root as usize];
        }
        (out, next as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_are_their_own_roots() {
        let mut uf = UnionFind::new();
        let a = uf.make_set();
        let b = uf.make_set();
        assert_ne!(a, b);
        assert_eq!(uf.find(a), a);
        assert!(!uf.same(a, b));
    }

    #[test]
    fn union_connects_transitively() {
        let mut uf = UnionFind::new();
        let ids: Vec<u32> = (0..5).map(|_| uf.make_set()).collect();
        uf.union(ids[0], ids[1]);
        uf.union(ids[1], ids[2]);
        assert!(uf.same(ids[0], ids[2]));
        assert!(!uf.same(ids[0], ids[3]));
        uf.union(ids[3], ids[4]);
        uf.union(ids[2], ids[4]);
        for &i in &ids {
            assert!(uf.same(ids[0], i));
        }
    }

    #[test]
    fn union_is_idempotent() {
        let mut uf = UnionFind::new();
        let a = uf.make_set();
        let b = uf.make_set();
        let r1 = uf.union(a, b);
        let r2 = uf.union(a, b);
        assert_eq!(r1, r2);
    }

    #[test]
    fn compact_labels_are_dense_and_consistent() {
        let mut uf = UnionFind::new();
        for _ in 0..6 {
            uf.make_set();
        }
        uf.union(0, 3);
        uf.union(4, 5);
        let (labels, count) = uf.compact_labels();
        assert_eq!(count, 4); // {0,3}, {1}, {2}, {4,5}
        assert_eq!(labels[0], labels[3]);
        assert_eq!(labels[4], labels[5]);
        assert_ne!(labels[0], labels[1]);
        // Dense: every label below `count`.
        assert!(labels.iter().all(|&l| (l as usize) < count));
        // First-appearance order: id 0's set gets label 0, id 1 gets 1, ...
        assert_eq!(labels[0], 0);
        assert_eq!(labels[1], 1);
        assert_eq!(labels[2], 2);
        assert_eq!(labels[4], 3);
    }

    #[test]
    fn empty_forest_compacts_to_nothing() {
        let mut uf = UnionFind::new();
        let (labels, count) = uf.compact_labels();
        assert!(labels.is_empty());
        assert_eq!(count, 0);
        assert!(uf.is_empty());
    }
}
