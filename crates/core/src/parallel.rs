//! Scoped-thread fan-out for the batched range queries of the parallel
//! fit path.
//!
//! An ε-range query is a pure function of `(probe point, eps, index)` and
//! the index is immutable during expansion, so a batch of queries can run
//! on any number of worker threads and still produce exactly the results
//! the sequential loop would have seen. Determinism comes from *where the
//! results go*, not where they are computed: probes are chunked in order,
//! chunks are joined in spawn order, and the caller consumes the merged
//! results in the original probe order.

use dbsvec_geometry::{PointId, PointSet};
use dbsvec_index::RangeIndex;

/// Runs one ε-range query per probe against the shared immutable `index`,
/// fanning the batch out across at most `threads` scoped worker threads.
///
/// The returned vector is aligned with `probes`: `result[i]` is the
/// neighborhood of `probes[i]`, in whatever order the index reports it —
/// the same order the sequential `RangeIndex::range` call produces, since
/// each worker issues the identical call. Empty neighborhoods are
/// perfectly legal results (an adversarial index may exclude even the
/// probe itself) and come back as empty vectors.
///
/// `threads <= 1` or a batch of fewer than two probes stays on the calling
/// thread.
pub(crate) fn batch_range_queries<I: RangeIndex + Sync>(
    points: &PointSet,
    index: &I,
    eps: f64,
    probes: &[PointId],
    threads: usize,
) -> Vec<Vec<PointId>> {
    if threads <= 1 || probes.len() < 2 {
        return probes
            .iter()
            .map(|&id| {
                let mut out = Vec::new();
                index.range(points.point(id), eps, &mut out);
                out
            })
            .collect();
    }
    let workers = threads.min(probes.len());
    let chunk = probes.len().div_ceil(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = probes
            .chunks(chunk)
            .map(|part| {
                scope.spawn(move || {
                    part.iter()
                        .map(|&id| {
                            let mut out = Vec::new();
                            index.range(points.point(id), eps, &mut out);
                            out
                        })
                        .collect::<Vec<Vec<PointId>>>()
                })
            })
            .collect();
        let mut merged = Vec::with_capacity(probes.len());
        for handle in handles {
            merged.extend(handle.join().expect("range-query worker panicked"));
        }
        merged
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbsvec_index::{LinearScan, RangeIndex};

    fn grid(n: usize) -> PointSet {
        let mut ps = PointSet::new(2);
        for i in 0..n {
            ps.push(&[(i % 7) as f64, (i / 7) as f64 * 1.5]);
        }
        ps
    }

    #[test]
    fn batched_results_match_sequential_queries_in_probe_order() {
        let ps = grid(41);
        let idx = LinearScan::build(&ps);
        let probes: Vec<PointId> = (0..ps.len() as PointId).step_by(3).collect();
        let mut want = Vec::new();
        for &id in &probes {
            let mut out = Vec::new();
            idx.range(ps.point(id), 2.0, &mut out);
            want.push(out);
        }
        for threads in [1, 2, 3, 8, 64] {
            let got = batch_range_queries(&ps, &idx, 2.0, &probes, threads);
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn empty_batches_and_single_probes_are_fine() {
        let ps = grid(5);
        let idx = LinearScan::build(&ps);
        assert!(batch_range_queries(&ps, &idx, 1.0, &[], 4).is_empty());
        let one = batch_range_queries(&ps, &idx, 0.5, &[2], 4);
        assert_eq!(one.len(), 1);
        assert!(one[0].contains(&2));
    }
}
