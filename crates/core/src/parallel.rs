//! Scoped-thread fan-out for the batched range queries of the parallel
//! fit path.
//!
//! An ε-range query is a pure function of `(probe point, eps, index)` and
//! the index is immutable during expansion, so a batch of queries can run
//! on any number of worker threads and still produce exactly the results
//! the sequential loop would have seen. Determinism comes from *where the
//! results go*, not where they are computed: probes are chunked in order,
//! chunks are joined in spawn order, and the caller consumes the merged
//! results in the original probe order.

use dbsvec_geometry::{PointId, PointSet};
use dbsvec_index::{KdTree, RangeIndex};

/// Runs one ε-range query per probe against the shared immutable `index`,
/// fanning the batch out across at most `threads` scoped worker threads.
///
/// The returned vector is aligned with `probes`: `result[i]` is the
/// neighborhood of `probes[i]`, in whatever order the index reports it —
/// the same order the sequential `RangeIndex::range` call produces, since
/// each worker issues the identical call. Empty neighborhoods are
/// perfectly legal results (an adversarial index may exclude even the
/// probe itself) and come back as empty vectors.
///
/// `threads <= 1` or a batch of fewer than two probes stays on the calling
/// thread.
pub(crate) fn batch_range_queries<I: RangeIndex + Sync>(
    points: &PointSet,
    index: &I,
    eps: f64,
    probes: &[PointId],
    threads: usize,
) -> Vec<Vec<PointId>> {
    if threads <= 1 || probes.len() < 2 {
        return probes
            .iter()
            .map(|&id| {
                let mut out = Vec::new();
                index.range(points.point(id), eps, &mut out);
                out
            })
            .collect();
    }
    let workers = threads.min(probes.len());
    let chunk = probes.len().div_ceil(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = probes
            .chunks(chunk)
            .map(|part| {
                scope.spawn(move || {
                    part.iter()
                        .map(|&id| {
                            let mut out = Vec::new();
                            index.range(points.point(id), eps, &mut out);
                            out
                        })
                        .collect::<Vec<Vec<PointId>>>()
                })
            })
            .collect();
        let mut merged = Vec::with_capacity(probes.len());
        for handle in handles {
            merged.extend(handle.join().expect("range-query worker panicked"));
        }
        merged
    })
}

/// Nearest discovered core within ε for one probe point: the raw working
/// cluster id of the closest entry of `cores`, ties broken toward the
/// core the kd-tree reports first (a fixed order — the tree is built once
/// on the driving thread). A pure function of immutable inputs, so the
/// batched fan-out below is bit-deterministic at every thread count.
fn nearest_core_cid(
    probe: &[f64],
    cores: &PointSet,
    tree: &KdTree,
    core_cids: &[u32],
    eps: f64,
    hits: &mut Vec<PointId>,
) -> Option<u32> {
    hits.clear();
    tree.range(probe, eps, hits);
    hits.iter()
        .map(|&c| (cores.squared_distance_to(c, probe), core_cids[c as usize]))
        .min_by(|a, b| a.0.partial_cmp(&b.0).expect("NaN distance"))
        .map(|(_, cid)| cid)
}

/// Resolves the nearest-core-within-ε rule for every probe, fanning the
/// lookups out across at most `threads` scoped worker threads against a
/// kd-tree over the discovered cores. `result[i]` is the raw cluster id
/// `probes[i]` attaches to, or `None` when no core lies within ε.
///
/// Same determinism argument as [`batch_range_queries`]: probes are
/// chunked in order, chunks join in spawn order, and each lookup is a
/// pure function of the shared immutable tree.
pub(crate) fn batch_nearest_cores(
    points: &PointSet,
    cores: &PointSet,
    tree: &KdTree,
    core_cids: &[u32],
    eps: f64,
    probes: &[PointId],
    threads: usize,
) -> Vec<Option<u32>> {
    if threads <= 1 || probes.len() < 2 {
        let mut hits = Vec::new();
        return probes
            .iter()
            .map(|&id| nearest_core_cid(points.point(id), cores, tree, core_cids, eps, &mut hits))
            .collect();
    }
    let workers = threads.min(probes.len());
    let chunk = probes.len().div_ceil(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = probes
            .chunks(chunk)
            .map(|part| {
                scope.spawn(move || {
                    let mut hits = Vec::new();
                    part.iter()
                        .map(|&id| {
                            nearest_core_cid(
                                points.point(id),
                                cores,
                                tree,
                                core_cids,
                                eps,
                                &mut hits,
                            )
                        })
                        .collect::<Vec<Option<u32>>>()
                })
            })
            .collect();
        let mut merged = Vec::with_capacity(probes.len());
        for handle in handles {
            merged.extend(handle.join().expect("nearest-core worker panicked"));
        }
        merged
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbsvec_index::{LinearScan, RangeIndex};

    fn grid(n: usize) -> PointSet {
        let mut ps = PointSet::new(2);
        for i in 0..n {
            ps.push(&[(i % 7) as f64, (i / 7) as f64 * 1.5]);
        }
        ps
    }

    #[test]
    fn batched_results_match_sequential_queries_in_probe_order() {
        let ps = grid(41);
        let idx = LinearScan::build(&ps);
        let probes: Vec<PointId> = (0..ps.len() as PointId).step_by(3).collect();
        let mut want = Vec::new();
        for &id in &probes {
            let mut out = Vec::new();
            idx.range(ps.point(id), 2.0, &mut out);
            want.push(out);
        }
        for threads in [1, 2, 3, 8, 64] {
            let got = batch_range_queries(&ps, &idx, 2.0, &probes, threads);
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn empty_batches_and_single_probes_are_fine() {
        let ps = grid(5);
        let idx = LinearScan::build(&ps);
        assert!(batch_range_queries(&ps, &idx, 1.0, &[], 4).is_empty());
        let one = batch_range_queries(&ps, &idx, 0.5, &[2], 4);
        assert_eq!(one.len(), 1);
        assert!(one[0].contains(&2));
    }

    #[test]
    fn batched_nearest_cores_match_sequential_at_every_thread_count() {
        let ps = grid(60);
        // Every third point is a "core" labeled by its row.
        let mut cores = PointSet::new(2);
        let mut cids = Vec::new();
        for i in (0..ps.len() as PointId).step_by(3) {
            cores.push(ps.point(i));
            cids.push(i / 7);
        }
        let tree = KdTree::build(&cores);
        let probes: Vec<PointId> = (0..ps.len() as PointId).collect();
        let want = batch_nearest_cores(&ps, &cores, &tree, &cids, 1.2, &probes, 1);
        assert!(want.iter().any(Option::is_some));
        for threads in [2, 3, 8, 64] {
            let got = batch_nearest_cores(&ps, &cores, &tree, &cids, 1.2, &probes, threads);
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn nearest_core_prefers_the_closer_core() {
        let cores = PointSet::from_rows(&[vec![0.0, 0.0], vec![10.0, 0.0]]);
        let tree = KdTree::build(&cores);
        let ps = PointSet::from_rows(&[vec![4.0, 0.0], vec![6.0, 0.0], vec![50.0, 0.0]]);
        let got = batch_nearest_cores(&ps, &cores, &tree, &[7, 9], 8.0, &[0, 1, 2], 1);
        assert_eq!(got, vec![Some(7), Some(9), None]);
    }
}
