//! DBSVEC — *Density-Based Clustering Using Support Vector Expansion*
//! (Wang, Zhang, Qi, Yuan — ICDE 2019).
//!
//! DBSVEC produces (nearly) the same clusters as DBSCAN while issuing range
//! queries for only a small subset of points. The key observation: once an
//! initial *sub-cluster* exists, only queries near its **boundary** can
//! discover new members — interior queries are redundant. DBSVEC finds
//! boundary points by training a Support Vector Domain Description on the
//! sub-cluster and querying only the resulting **core support vectors**
//! (support vectors whose ε-neighborhood is dense).
//!
//! The algorithm has four phases (paper Algorithms 2 & 3):
//!
//! 1. **Initialization** — scan for an unvisited core point; its
//!    ε-neighborhood seeds a sub-cluster. Non-core points are parked on a
//!    potential-noise list along with their (small) neighborhoods.
//! 2. **Support vector expansion** — train weighted SVDD on the
//!    sub-cluster's target set, range-query the support vectors, absorb
//!    newly found neighbors of core support vectors; repeat until a round
//!    adds nothing.
//! 3. **Sub-cluster merging** — when an absorbed point already belongs to
//!    another sub-cluster and is core, the two sub-clusters are one cluster
//!    (Lemma 3); a union–find tracks the merges.
//! 4. **Noise verification** — each potential noise point with a core
//!    neighbor becomes a border point of that neighbor's cluster; the rest
//!    are confirmed noise. This yields DBSCAN-identical border/noise sets
//!    (Theorems 2–3).
//!
//! Accuracy: every DBSVEC cluster is a subset of a DBSCAN cluster
//! (Theorem 1 — clusters are never wrongly merged); splitting a DBSCAN
//! cluster is possible only under the contrived conditions of §III-C and is
//! not observed in the paper's experiments or this crate's test suite.
//!
//! # Quick start
//!
//! ```
//! use dbsvec_core::{Dbsvec, DbsvecConfig};
//! use dbsvec_geometry::PointSet;
//!
//! let mut ps = PointSet::new(2);
//! for i in 0..60 {
//!     let t = i as f64 / 60.0 * std::f64::consts::TAU;
//!     ps.push(&[t.cos() * 10.0, t.sin() * 10.0]); // a ring
//!     ps.push(&[t.cos(), t.sin()]);               // a blob inside it
//! }
//! let result = Dbsvec::new(DbsvecConfig::new(2.2, 4)).fit(&ps);
//! assert_eq!(result.num_clusters(), 2);
//! println!("range queries: {}", result.stats().range_queries);
//! ```

pub mod config;
pub mod connectivity;
pub mod dbsvec;
pub mod expand;
pub mod labels;
pub mod noise;
pub(crate) mod parallel;
pub mod predict;
pub(crate) mod runner;
pub mod sample;
pub mod stats;
pub mod unionfind;

pub use config::{
    DbsvecConfig, NuStrategy, ParallelConfig, SamplingConfig, SamplingMode, DEFAULT_SAMPLING_SEED,
};
pub use connectivity::Connectivity;
pub use dbsvec::{dbsvec, Dbsvec, DbsvecResult};
pub use labels::{Clustering, WorkingLabels};
pub use predict::{ClusterModel, ModelError};
pub use stats::DbsvecStats;
pub use unionfind::UnionFind;
