//! Cluster label containers shared by DBSVEC and the baselines.

/// Final output of a clustering run: one assignment per point.
///
/// Cluster ids are dense (`0..num_clusters`), `None` marks noise. The type
/// is deliberately algorithm-agnostic — DBSVEC, every baseline in
//  `dbsvec-baselines`, and the metrics crate all speak `Clustering`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Clustering {
    assignments: Vec<Option<u32>>,
    num_clusters: usize,
}

impl Clustering {
    /// Builds a clustering from raw assignments, compacting cluster ids to
    /// a dense `0..k` range ordered by first appearance.
    pub fn from_assignments(raw: Vec<Option<u32>>) -> Self {
        let mut mapping = std::collections::HashMap::new();
        let mut next = 0u32;
        let assignments = raw
            .into_iter()
            .map(|a| {
                a.map(|cid| {
                    *mapping.entry(cid).or_insert_with(|| {
                        let v = next;
                        next += 1;
                        v
                    })
                })
            })
            .collect();
        Self {
            assignments,
            num_clusters: next as usize,
        }
    }

    /// One entry per point: `Some(cluster)` or `None` for noise.
    pub fn assignments(&self) -> &[Option<u32>] {
        &self.assignments
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.assignments.len()
    }

    /// Whether the clustering covers no points.
    pub fn is_empty(&self) -> bool {
        self.assignments.is_empty()
    }

    /// Number of clusters (noise excluded).
    pub fn num_clusters(&self) -> usize {
        self.num_clusters
    }

    /// The assignment of point `i`.
    pub fn get(&self, i: usize) -> Option<u32> {
        self.assignments[i]
    }

    /// Whether point `i` is noise.
    pub fn is_noise(&self, i: usize) -> bool {
        self.assignments[i].is_none()
    }

    /// Number of noise points.
    pub fn noise_count(&self) -> usize {
        self.assignments.iter().filter(|a| a.is_none()).count()
    }

    /// Size of each cluster, indexed by cluster id.
    pub fn cluster_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0; self.num_clusters];
        for a in self.assignments.iter().flatten() {
            sizes[*a as usize] += 1;
        }
        sizes
    }

    /// The member point ids of each cluster, indexed by cluster id.
    pub fn cluster_members(&self) -> Vec<Vec<u32>> {
        let mut members = vec![Vec::new(); self.num_clusters];
        for (i, a) in self.assignments.iter().enumerate() {
            if let Some(c) = a {
                members[*c as usize].push(i as u32);
            }
        }
        members
    }
}

/// Mutable per-point label state used *during* a clustering run.
///
/// Encodes the paper's three point states compactly: `UNCLASSIFIED`,
/// `NOISE`, or a raw (pre-merge) cluster id.
#[derive(Clone, Debug)]
pub struct WorkingLabels {
    raw: Vec<i64>,
}

const UNCLASSIFIED: i64 = -2;
const NOISE: i64 = -1;

impl WorkingLabels {
    /// All points start unclassified.
    pub fn new(n: usize) -> Self {
        Self {
            raw: vec![UNCLASSIFIED; n],
        }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.raw.len()
    }

    /// Whether there are no points.
    pub fn is_empty(&self) -> bool {
        self.raw.is_empty()
    }

    /// Whether point `i` has not been visited yet.
    pub fn is_unclassified(&self, i: u32) -> bool {
        self.raw[i as usize] == UNCLASSIFIED
    }

    /// Whether point `i` is currently marked as (potential) noise.
    pub fn is_noise(&self, i: u32) -> bool {
        self.raw[i as usize] == NOISE
    }

    /// The raw cluster id of point `i`, if assigned.
    pub fn cluster(&self, i: u32) -> Option<u32> {
        let v = self.raw[i as usize];
        (v >= 0).then_some(v as u32)
    }

    /// Assigns point `i` to raw cluster `cid`.
    pub fn set_cluster(&mut self, i: u32, cid: u32) {
        self.raw[i as usize] = cid as i64;
    }

    /// Marks point `i` as noise.
    pub fn set_noise(&mut self, i: u32) {
        self.raw[i as usize] = NOISE;
    }

    /// Finalizes into a [`Clustering`], translating raw ids through
    /// `resolve` (typically a union–find `find` composed with compaction).
    ///
    /// Unclassified points are treated as noise — by the end of a correct
    /// run none remain, but a defensive mapping beats a panic in release.
    pub fn finalize(self, mut resolve: impl FnMut(u32) -> u32) -> Clustering {
        let assignments: Vec<Option<u32>> = self
            .raw
            .iter()
            .map(|&v| {
                if v >= 0 {
                    Some(resolve(v as u32))
                } else {
                    None
                }
            })
            .collect();
        Clustering::from_assignments(assignments)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_assignments_compacts_ids() {
        let c = Clustering::from_assignments(vec![Some(7), None, Some(3), Some(7), Some(3)]);
        assert_eq!(c.num_clusters(), 2);
        assert_eq!(c.assignments(), &[Some(0), None, Some(1), Some(0), Some(1)]);
        assert_eq!(c.noise_count(), 1);
        assert_eq!(c.cluster_sizes(), vec![2, 2]);
    }

    #[test]
    fn cluster_members_round_trips() {
        let c = Clustering::from_assignments(vec![Some(0), Some(1), Some(0), None]);
        let members = c.cluster_members();
        assert_eq!(members, vec![vec![0, 2], vec![1]]);
    }

    #[test]
    fn empty_clustering() {
        let c = Clustering::from_assignments(Vec::new());
        assert!(c.is_empty());
        assert_eq!(c.num_clusters(), 0);
        assert!(c.cluster_sizes().is_empty());
    }

    #[test]
    fn working_labels_state_machine() {
        let mut wl = WorkingLabels::new(3);
        assert!(wl.is_unclassified(0));
        wl.set_noise(0);
        assert!(wl.is_noise(0));
        assert!(!wl.is_unclassified(0));
        wl.set_cluster(0, 5);
        assert_eq!(wl.cluster(0), Some(5));
        assert!(!wl.is_noise(0));
        assert_eq!(wl.cluster(1), None);
    }

    #[test]
    fn finalize_resolves_and_compacts() {
        let mut wl = WorkingLabels::new(4);
        wl.set_cluster(0, 10);
        wl.set_cluster(1, 20);
        wl.set_noise(2);
        wl.set_cluster(3, 10);
        // Pretend union-find merged 20 into 10.
        let c = wl.finalize(|raw| if raw == 20 { 10 } else { raw });
        assert_eq!(c.num_clusters(), 1);
        assert_eq!(c.assignments(), &[Some(0), Some(0), None, Some(0)]);
    }

    #[test]
    fn finalize_maps_unclassified_to_noise() {
        let wl = WorkingLabels::new(2);
        let c = wl.finalize(|raw| raw);
        assert_eq!(c.noise_count(), 2);
    }
}
