//! Run statistics backing the paper's Table II cost model.
//!
//! §III-D bounds DBSVEC's range queries by `s + 1 + k + m + MinPts·l` — the
//! seeds, the core-support-vector tests, the merge tests, and the noise
//! verification — each of which is far smaller than `n`. These counters let
//! the `table2_complexity` harness (and any user) verify that θ ≪ n on
//! their own data.

/// Counters accumulated over one DBSVEC run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DbsvecStats {
    /// `s`: sub-cluster seeds (successful initializations).
    pub seeds: u64,
    /// SVDD trainings performed across all expansions.
    pub svdd_trainings: u64,
    /// `k`: total support vectors produced (range queries issued on them).
    pub support_vectors: u64,
    /// Support vectors that passed the core test and expanded the cluster.
    pub core_support_vectors: u64,
    /// `m`: sub-cluster merges triggered by overlapping core points.
    pub merges: u64,
    /// `l`: points that entered the potential-noise list.
    pub noise_candidates: u64,
    /// Points confirmed as noise by verification.
    pub noise_confirmed: u64,
    /// Every ε-range query issued (materializing or counting).
    pub range_queries: u64,
    /// Expansion rounds (SVDD training + SV queries) across all clusters.
    pub expansion_rounds: u64,
    /// Largest SVDD target set ñ observed.
    pub max_target_size: usize,
    /// Total SMO iterations across all trainings.
    pub smo_iterations: u64,
    /// Trainings that started from a previous round's α (warm starts).
    pub warm_started_trainings: u64,
    /// Trainings that hit the SMO iteration cap instead of converging.
    pub iterations_exhausted: u64,
    /// Peak shrunk variables summed over all trainings (active-set
    /// shrinking effectiveness; divide by `smo_iterations`-weighted target
    /// sizes for a fraction).
    pub shrunk_variables: u64,
    /// Sum of per-training initial KKT violations in fixed-point microunits
    /// (`round(violation · 1e6)`): integer so the stats stay `Eq`/replayable.
    /// Warm starts drive the per-training violation toward 0.
    pub initial_kkt_violation_e6: u64,
    /// Core candidates drawn by the sampled fit mode (0 on exact fits,
    /// which place every point in candidacy without drawing).
    pub sampled_candidates: u64,
    /// Unsampled points examined by the attachment pass (0 on exact fits).
    pub attachment_candidates: u64,
    /// Attachment candidates that joined the cluster of a discovered core
    /// within ε; the remainder were confirmed as noise.
    pub attached_points: u64,
}

impl DbsvecStats {
    /// The paper's θ: range queries per data point. DBSCAN has θ ≈ 1;
    /// DBSVEC's claim is θ ≪ 1 on clustered data.
    pub fn theta(&self, n: usize) -> f64 {
        if n == 0 {
            0.0
        } else {
            self.range_queries as f64 / n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theta_is_queries_per_point() {
        let stats = DbsvecStats {
            range_queries: 250,
            ..Default::default()
        };
        assert!((stats.theta(1000) - 0.25).abs() < 1e-12);
        assert_eq!(stats.theta(0), 0.0);
    }

    #[test]
    fn default_is_all_zero() {
        let stats = DbsvecStats::default();
        assert_eq!(stats.seeds, 0);
        assert_eq!(stats.range_queries, 0);
        assert_eq!(stats.max_target_size, 0);
    }
}
