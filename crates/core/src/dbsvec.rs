//! The DBSVEC driver (paper Algorithm 2).

use dbsvec_geometry::{PointId, PointSet};
use dbsvec_index::{RStarTree, RangeIndex};
use dbsvec_obs::{Event, NoopObserver, Observer, Phase};

use crate::config::DbsvecConfig;
use crate::expand::sv_expand_cluster;
use crate::labels::Clustering;
use crate::noise::verify_noise;
use crate::runner::RunState;
use crate::stats::DbsvecStats;

/// The DBSVEC clustering algorithm.
///
/// Construct with a [`DbsvecConfig`] and call [`Dbsvec::fit`]:
///
/// ```
/// use dbsvec_core::{Dbsvec, DbsvecConfig};
/// use dbsvec_geometry::PointSet;
///
/// let mut ps = PointSet::new(2);
/// for i in 0..30 {
///     ps.push(&[i as f64 * 0.1, 0.0]);       // a dense line cluster
///     ps.push(&[i as f64 * 0.1, 100.0]);     // another, far away
/// }
/// let result = Dbsvec::new(DbsvecConfig::new(0.5, 4)).fit(&ps);
/// assert_eq!(result.num_clusters(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct Dbsvec {
    config: DbsvecConfig,
}

/// Output of a DBSVEC run: the clustering plus the cost counters that back
/// the paper's complexity claims.
#[derive(Clone, Debug)]
pub struct DbsvecResult {
    clustering: Clustering,
    stats: DbsvecStats,
    core_points: Vec<PointId>,
}

impl DbsvecResult {
    /// The final cluster labels.
    pub fn labels(&self) -> &Clustering {
        &self.clustering
    }

    /// Consumes the result, keeping only the labels.
    pub fn into_labels(self) -> Clustering {
        self.clustering
    }

    /// Number of clusters found.
    pub fn num_clusters(&self) -> usize {
        self.clustering.num_clusters()
    }

    /// Run statistics (range queries, SVDD trainings, merges, ...).
    pub fn stats(&self) -> &DbsvecStats {
        &self.stats
    }

    /// Ids of the points *verified* as core during the run (seeds, core
    /// support vectors, merge/noise-verification tests). Every clustered
    /// point lies within ε of one of these — it was absorbed from such a
    /// point's neighborhood — so they are exactly what
    /// [`crate::predict::ClusterModel`] needs for out-of-sample
    /// classification.
    pub fn core_points(&self) -> &[PointId] {
        &self.core_points
    }
}

impl Dbsvec {
    /// Creates the algorithm with the given configuration.
    pub fn new(config: DbsvecConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &DbsvecConfig {
        &self.config
    }

    /// Clusters `points`, building a bulk-loaded R\*-tree for the range
    /// queries (the paper's default substrate).
    pub fn fit(&self, points: &PointSet) -> DbsvecResult {
        self.fit_observed(points, &mut NoopObserver)
    }

    /// [`Dbsvec::fit`] with an observer receiving phase spans and events.
    pub fn fit_observed(&self, points: &PointSet, obs: &mut dyn Observer) -> DbsvecResult {
        let index = RStarTree::build(points);
        self.fit_with_index_observed(points, &index, obs)
    }

    /// Clusters `points` using a caller-provided range-query engine. The
    /// engine must index exactly `points` (same ids).
    ///
    /// # Panics
    ///
    /// Panics if the index size disagrees with the point set.
    pub fn fit_with_index<I: RangeIndex + Sync>(
        &self,
        points: &PointSet,
        index: &I,
    ) -> DbsvecResult {
        self.fit_with_index_observed(points, index, &mut NoopObserver)
    }

    /// [`Dbsvec::fit_with_index`] with an observer. The observer sees five
    /// phases (`init` ⊃ `sv_expand` ⊃ `svdd_train`, then `noise_verify`,
    /// then `merge` for finalization) and one typed event per statistics
    /// increment, so a recorded stream replays to exactly the returned
    /// [`DbsvecStats`] (see `dbsvec-obs`'s `ReplayCounts`).
    pub fn fit_with_index_observed<I: RangeIndex + Sync>(
        &self,
        points: &PointSet,
        index: &I,
        obs: &mut dyn Observer,
    ) -> DbsvecResult {
        assert_eq!(
            index.len(),
            points.len(),
            "index covers {} points but the set has {}",
            index.len(),
            points.len()
        );
        // Sampled core discovery: draw the candidate subsample up front (a
        // pure function of the points and the seeded config, identical at
        // every thread count). A draw covering all n points — `Exact` mode
        // included — leaves the mask off, so the classic fit path below
        // runs untouched: bit-identical labels, stats, and traces.
        let sample = crate::sample::sample_candidates(points, &self.config.sampling);
        let mut state = RunState::new(points, index, &self.config, obs);

        // ---- Initialization + expansion (Algorithm 2 lines 2–12).
        state.obs.span_enter(Phase::Init);
        if let Some(ids) = sample {
            state.stats.sampled_candidates = ids.len() as u64;
            state.obs.event(&Event::Sample {
                candidates: ids.len(),
                total: points.len(),
                rate_e6: ((ids.len() as f64 / points.len().max(1) as f64) * 1e6).round() as u64,
            });
            let mut mask = vec![false; points.len()];
            for &i in &ids {
                mask[i as usize] = true;
            }
            state.candidates = Some(mask);
        }
        let mut neighborhood: Vec<PointId> = Vec::new();
        for i in 0..points.len() as u32 {
            if !state.is_candidate(i) {
                // Sampled mode: unsampled points neither seed nor park on
                // the noise list — the attachment pass resolves them.
                continue;
            }
            if !state.labels.is_unclassified(i) {
                continue;
            }
            state.range_query(i, &mut neighborhood);
            if neighborhood.len() < self.config.min_pts {
                // Potential noise; keep the (small) neighborhood for the
                // verification pass (lines 13–15).
                state.labels.set_noise(i);
                state.noise_list.push((i, neighborhood.clone()));
                continue;
            }

            // Seed a new sub-cluster from the ε-neighborhood (Corollary 1).
            state.stats.seeds += 1;
            state.obs.event(&Event::Seed {
                point: i,
                neighborhood_len: neighborhood.len(),
            });
            let raw_cid = state.uf.make_set();
            state.labels.set_cluster(i, raw_cid);
            let mut members = vec![i];
            let neigh = std::mem::take(&mut neighborhood);
            for &j in &neigh {
                if j != i {
                    state.absorb_or_merge(j, raw_cid, &mut members);
                }
            }
            neighborhood = neigh;

            // ---- Support vector expansion (Algorithm 3).
            sv_expand_cluster(&mut state, raw_cid, members);
        }
        state.obs.span_exit(Phase::Init);

        // ---- Noise verification (Algorithm 2 line 16).
        verify_noise(&mut state);

        // ---- Finalize: resolve merges, compact cluster ids.
        state.obs.span_enter(Phase::Merge);
        let RunState {
            labels,
            mut uf,
            stats,
            core_status,
            obs,
            ..
        } = state;
        let core_points: Vec<PointId> = core_status
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s, crate::runner::CoreStatus::Core))
            .map(|(i, _)| i as PointId)
            .collect();
        let (compact, _) = uf.compact_labels();
        let clustering = labels.finalize(|raw| compact[raw as usize]);
        obs.span_exit(Phase::Merge);
        DbsvecResult {
            clustering,
            stats,
            core_points,
        }
    }
}

/// One-call convenience: DBSVEC with the paper's recommended configuration.
///
/// ```
/// use dbsvec_geometry::PointSet;
///
/// let ps = PointSet::from_rows(&[vec![0.0], vec![0.1], vec![0.2], vec![9.0]]);
/// let clustering = dbsvec_core::dbsvec(&ps, 0.3, 2);
/// assert_eq!(clustering.num_clusters(), 1);
/// assert!(clustering.is_noise(3));
/// ```
pub fn dbsvec(points: &PointSet, eps: f64, min_pts: usize) -> Clustering {
    Dbsvec::new(DbsvecConfig::new(eps, min_pts))
        .fit(points)
        .into_labels()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NuStrategy;
    use dbsvec_geometry::rng::SplitMix64;
    use dbsvec_index::{CountingIndex, LinearScan};

    /// Brute-force reference DBSCAN used as the correctness oracle.
    fn dbscan_oracle(points: &PointSet, eps: f64, min_pts: usize) -> Vec<Option<u32>> {
        let n = points.len();
        let eps_sq = eps * eps;
        let neighbors: Vec<Vec<usize>> = (0..n)
            .map(|i| {
                (0..n)
                    .filter(|&j| points.squared_distance(i as u32, j as u32) <= eps_sq)
                    .collect()
            })
            .collect();
        let core: Vec<bool> = neighbors.iter().map(|nb| nb.len() >= min_pts).collect();
        let mut labels: Vec<Option<u32>> = vec![None; n];
        let mut visited = vec![false; n];
        let mut next_cluster = 0u32;
        for start in 0..n {
            if visited[start] || !core[start] {
                continue;
            }
            let cid = next_cluster;
            next_cluster += 1;
            let mut stack = vec![start];
            visited[start] = true;
            labels[start] = Some(cid);
            while let Some(p) = stack.pop() {
                for &q in &neighbors[p] {
                    if labels[q].is_none() {
                        labels[q] = Some(cid);
                    }
                    if core[q] && !visited[q] {
                        visited[q] = true;
                        stack.push(q);
                    }
                }
            }
        }
        labels
    }

    /// Same-cluster pair recall of `got` against the oracle (1.0 = every
    /// oracle pair preserved).
    fn pair_recall(oracle: &[Option<u32>], got: &[Option<u32>]) -> f64 {
        let n = oracle.len();
        let mut oracle_pairs = 0u64;
        let mut kept = 0u64;
        for i in 0..n {
            for j in (i + 1)..n {
                if oracle[i].is_some() && oracle[i] == oracle[j] {
                    oracle_pairs += 1;
                    if got[i].is_some() && got[i] == got[j] {
                        kept += 1;
                    }
                }
            }
        }
        if oracle_pairs == 0 {
            1.0
        } else {
            kept as f64 / oracle_pairs as f64
        }
    }

    fn blobs(centers: &[[f64; 2]], per: usize, spread: f64, seed: u64) -> PointSet {
        let mut rng = SplitMix64::new(seed);
        let mut ps = PointSet::new(2);
        for c in centers {
            for _ in 0..per {
                let x: f64 = (0..12).map(|_| rng.next_f64()).sum::<f64>() - 6.0;
                let y: f64 = (0..12).map(|_| rng.next_f64()).sum::<f64>() - 6.0;
                ps.push(&[c[0] + spread * x, c[1] + spread * y]);
            }
        }
        ps
    }

    #[test]
    fn separates_well_spaced_blobs() {
        let ps = blobs(&[[0.0, 0.0], [50.0, 0.0], [0.0, 50.0]], 80, 1.0, 42);
        let result = Dbsvec::new(DbsvecConfig::new(4.0, 8)).fit(&ps);
        assert_eq!(result.num_clusters(), 3);
        // Each blob should be (almost) one cluster.
        let sizes = result.labels().cluster_sizes();
        for &s in &sizes {
            assert!(s >= 75, "cluster sizes {sizes:?} too uneven");
        }
    }

    #[test]
    fn matches_dbscan_on_blobs() {
        let ps = blobs(&[[0.0, 0.0], [30.0, 0.0]], 100, 1.0, 7);
        let oracle = dbscan_oracle(&ps, 3.0, 8);
        let got = Dbsvec::new(DbsvecConfig::new(3.0, 8)).fit(&ps);
        let recall = pair_recall(&oracle, got.labels().assignments());
        assert!(recall > 0.999, "recall {recall} too low");
        // Theorem 3: identical noise.
        let oracle_noise: Vec<bool> = oracle.iter().map(Option::is_none).collect();
        let got_noise: Vec<bool> = got
            .labels()
            .assignments()
            .iter()
            .map(Option::is_none)
            .collect();
        assert_eq!(oracle_noise, got_noise);
    }

    #[test]
    fn necessity_guarantee_holds() {
        // Theorem 1: every DBSVEC cluster is a subset of a DBSCAN cluster.
        let ps = blobs(&[[0.0, 0.0], [14.0, 0.0], [28.0, 0.0]], 60, 1.4, 99);
        let oracle = dbscan_oracle(&ps, 2.5, 6);
        let got = Dbsvec::new(DbsvecConfig::new(2.5, 6)).fit(&ps);
        // For every pair in the same DBSVEC cluster, the oracle must agree
        // (both clustered together) unless the oracle calls one of them
        // noise — which Theorem 3 forbids, so check that too.
        let a = got.labels().assignments();
        for i in 0..ps.len() {
            for j in (i + 1)..ps.len() {
                if a[i].is_some() && a[i] == a[j] {
                    assert_eq!(
                        oracle[i], oracle[j],
                        "DBSVEC joined {i} and {j} but DBSCAN separated them"
                    );
                }
            }
        }
    }

    #[test]
    fn all_noise_dataset() {
        // Points pairwise farther than eps: everything is noise.
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 * 10.0, 0.0]).collect();
        let ps = PointSet::from_rows(&rows);
        let result = Dbsvec::new(DbsvecConfig::new(1.0, 3)).fit(&ps);
        assert_eq!(result.num_clusters(), 0);
        assert_eq!(result.labels().noise_count(), 20);
        assert_eq!(result.stats().noise_confirmed, 20);
    }

    #[test]
    fn single_dense_cluster_no_noise() {
        let ps = blobs(&[[0.0, 0.0]], 150, 1.0, 3);
        let result = Dbsvec::new(DbsvecConfig::new(3.0, 5)).fit(&ps);
        assert_eq!(result.num_clusters(), 1);
        assert_eq!(result.labels().noise_count(), 0);
    }

    #[test]
    fn empty_input() {
        let ps = PointSet::new(2);
        let result = Dbsvec::new(DbsvecConfig::new(1.0, 3)).fit(&ps);
        assert!(result.labels().is_empty());
        assert_eq!(result.num_clusters(), 0);
    }

    #[test]
    fn uses_far_fewer_range_queries_than_points() {
        let ps = blobs(&[[0.0, 0.0], [40.0, 40.0]], 400, 1.5, 21);
        let index = CountingIndex::new(LinearScan::build(&ps));
        let result = Dbsvec::new(DbsvecConfig::new(4.0, 10)).fit_with_index(&ps, &index);
        assert_eq!(result.num_clusters(), 2);
        let theta = result.stats().theta(ps.len());
        assert!(
            theta < 0.5,
            "θ = {theta} — support vector expansion saved nothing"
        );
        // The internal counter matches the index's own accounting.
        assert_eq!(result.stats().range_queries, index.stats().queries);
    }

    #[test]
    fn ablations_still_cluster_correctly() {
        let ps = blobs(&[[0.0, 0.0], [25.0, 0.0]], 70, 1.2, 17);
        for config in [
            DbsvecConfig::new(3.0, 6).without_weights(),
            DbsvecConfig::new(3.0, 6).without_incremental_learning(),
            DbsvecConfig::new(3.0, 6).with_random_kernel_width(5),
            DbsvecConfig::new(3.0, 6).minimal_nu(),
        ] {
            let result = Dbsvec::new(config.clone()).fit(&ps);
            let oracle = dbscan_oracle(&ps, 3.0, 6);
            let recall = pair_recall(&oracle, result.labels().assignments());
            assert!(recall > 0.95, "recall {recall} too low for {config:?}");
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let ps = blobs(&[[0.0, 0.0], [20.0, 5.0]], 90, 1.3, 55);
        let a = Dbsvec::new(DbsvecConfig::new(2.5, 7)).fit(&ps);
        let b = Dbsvec::new(DbsvecConfig::new(2.5, 7)).fit(&ps);
        assert_eq!(a.labels(), b.labels());
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn border_points_join_their_nearest_core_cluster() {
        // A dense clump plus one border point within eps of the clump edge.
        let mut ps = PointSet::new(2);
        for i in 0..10 {
            for j in 0..10 {
                ps.push(&[i as f64 * 0.1, j as f64 * 0.1]);
            }
        }
        let border = ps.push(&[1.2, 0.45]); // within 0.4 of the (0.9, 0.45) area
        let result = Dbsvec::new(DbsvecConfig::new(0.4, 8)).fit(&ps);
        assert_eq!(result.num_clusters(), 1);
        assert!(
            !result.labels().is_noise(border as usize),
            "border point must be attached by noise verification"
        );
    }

    #[test]
    fn nu_one_degenerates_toward_dbscan() {
        // §IV-C: as ν → 1 every point becomes a support vector.
        let ps = blobs(&[[0.0, 0.0]], 60, 1.0, 9);
        let mut config = DbsvecConfig::new(3.0, 5);
        config.nu = NuStrategy::Fixed(1.0);
        let result = Dbsvec::new(config).fit(&ps);
        assert_eq!(result.num_clusters(), 1);
        // Nearly every point should have been queried.
        assert!(result.stats().support_vectors as usize >= 50);
    }

    /// Adversarial engine answering *open*-ball queries with the boundary
    /// and exact duplicates excluded — except for probes at the origin,
    /// which get the honest closed ball. A probe sitting on a pile of
    /// duplicates, or exactly ε from everything else, gets an EMPTY result
    /// — not even itself. The `RangeIndex` contract promises closed balls,
    /// so no shipped engine does this; the driver must still come back
    /// cleanly instead of indexing into a neighborhood it assumed non-empty.
    struct OpenBallIndex<'a> {
        points: &'a PointSet,
        /// When true, a probe exactly at the origin gets a closed ball, so
        /// a cluster can seed there and expansion gets to see the empty
        /// results first-hand.
        closed_at_origin: bool,
    }

    impl RangeIndex for OpenBallIndex<'_> {
        fn range(&self, query: &[f64], eps: f64, out: &mut Vec<PointId>) {
            let eps_sq = eps * eps;
            let honest = self.closed_at_origin && query.iter().all(|&c| c == 0.0);
            for j in 0..self.points.len() as PointId {
                let p = self.points.point(j);
                let d_sq: f64 = query.iter().zip(p).map(|(a, b)| (a - b) * (a - b)).sum();
                if (honest && d_sq <= eps_sq) || (d_sq > 0.0 && d_sq < eps_sq) {
                    out.push(j);
                }
            }
        }

        fn len(&self) -> usize {
            self.points.len()
        }
    }

    #[test]
    fn empty_range_results_return_cleanly() {
        // Five exact duplicates at the origin plus one point exactly ε away:
        // under the open-ball adversary every query returns nothing, at any
        // thread count. The fit must label everything noise without
        // panicking.
        let mut ps = PointSet::new(2);
        for _ in 0..5 {
            ps.push(&[0.0, 0.0]);
        }
        ps.push(&[1.0, 0.0]);
        let index = OpenBallIndex {
            points: &ps,
            closed_at_origin: false,
        };
        for threads in [1usize, 4] {
            let config = DbsvecConfig::new(1.0, 2).with_threads(threads);
            let result = Dbsvec::new(config).fit_with_index(&ps, &index);
            assert_eq!(result.num_clusters(), 0, "threads={threads}");
            assert_eq!(result.labels().noise_count(), 6, "threads={threads}");
            assert!(result.core_points().is_empty(), "threads={threads}");
        }
    }

    #[test]
    fn empty_range_results_inside_expansion_return_cleanly() {
        // Honest closed ball at the origin only: the duplicate pile seeds a
        // cluster that absorbs the boundary point, and when expansion later
        // probes that boundary point — exactly ε from the pile, excluded by
        // the open ball along with its own degenerate self-distance — the
        // round's batch holds a genuinely EMPTY neighborhood. Both the
        // sequential and the batched path must treat it as "non-core, moves
        // on" rather than indexing into it.
        let mut ps = PointSet::new(2);
        for _ in 0..3 {
            ps.push(&[0.0, 0.0]);
        }
        ps.push(&[1.0, 0.0]);
        let index = OpenBallIndex {
            points: &ps,
            closed_at_origin: true,
        };
        let baseline =
            Dbsvec::new(DbsvecConfig::new(1.0, 2).with_threads(1)).fit_with_index(&ps, &index);
        assert_eq!(baseline.num_clusters(), 1);
        assert_eq!(baseline.labels().noise_count(), 0);
        for threads in [2usize, 4] {
            let par = Dbsvec::new(DbsvecConfig::new(1.0, 2).with_threads(threads))
                .fit_with_index(&ps, &index);
            assert_eq!(baseline.labels(), par.labels(), "threads={threads}");
            assert_eq!(baseline.stats(), par.stats(), "threads={threads}");
        }
    }

    #[test]
    fn parallel_fit_is_bit_identical_to_sequential() {
        let ps = blobs(&[[0.0, 0.0], [25.0, 10.0]], 120, 1.2, 61);
        let baseline = Dbsvec::new(DbsvecConfig::new(3.0, 6).with_threads(1)).fit(&ps);
        for threads in [2usize, 4, 8] {
            let par = Dbsvec::new(DbsvecConfig::new(3.0, 6).with_threads(threads)).fit(&ps);
            assert_eq!(baseline.labels(), par.labels(), "threads={threads}");
            assert_eq!(baseline.stats(), par.stats(), "threads={threads}");
            assert_eq!(
                baseline.core_points(),
                par.core_points(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn sampled_fit_recovers_blobs_with_fewer_queries() {
        let ps = blobs(&[[0.0, 0.0], [40.0, 40.0]], 400, 1.5, 21);
        let exact = Dbsvec::new(DbsvecConfig::new(4.0, 10)).fit(&ps);
        let sampled =
            Dbsvec::new(DbsvecConfig::new(4.0, 10).with_uniform_sampling(0.3, 11)).fit(&ps);
        assert_eq!(sampled.num_clusters(), 2);
        let recall = pair_recall(exact.labels().assignments(), sampled.labels().assignments());
        assert!(recall > 0.98, "recall {recall} too low");
        assert!(
            sampled.stats().range_queries < exact.stats().range_queries,
            "sampling must save queries: {} vs {}",
            sampled.stats().range_queries,
            exact.stats().range_queries
        );
        let s = sampled.stats();
        assert!(s.sampled_candidates > 0 && (s.sampled_candidates as usize) < ps.len());
        // Unsampled points absorbed during expansion never reach the
        // attachment pass; the candidates are exactly the leftover ones.
        assert!(s.attachment_candidates <= ps.len() as u64 - s.sampled_candidates);
        assert!(s.attached_points <= s.attachment_candidates);
    }

    #[test]
    fn kcenter_sampled_fit_recovers_blobs() {
        let ps = blobs(&[[0.0, 0.0], [30.0, 0.0]], 150, 1.1, 13);
        let m = ps.len() / 5;
        let result = Dbsvec::new(DbsvecConfig::new(3.5, 8).with_kcenter_sampling(m, 5)).fit(&ps);
        assert_eq!(result.num_clusters(), 2);
        assert_eq!(result.stats().sampled_candidates, m as u64);
    }

    #[test]
    fn uniform_rate_one_is_bit_identical_to_exact() {
        let ps = blobs(&[[0.0, 0.0], [25.0, 10.0]], 100, 1.2, 77);
        let exact = Dbsvec::new(DbsvecConfig::new(3.0, 6)).fit(&ps);
        let sampled =
            Dbsvec::new(DbsvecConfig::new(3.0, 6).with_uniform_sampling(1.0, 99)).fit(&ps);
        assert_eq!(exact.labels(), sampled.labels());
        assert_eq!(exact.stats(), sampled.stats());
        assert_eq!(exact.core_points(), sampled.core_points());
        assert_eq!(sampled.stats().sampled_candidates, 0, "full draw is exact");
        assert_eq!(sampled.stats().attachment_candidates, 0);
    }

    #[test]
    fn sampled_parallel_fit_is_bit_identical_to_sequential() {
        let mut ps = blobs(&[[0.0, 0.0], [25.0, 10.0]], 120, 1.2, 61);
        // Isolated stragglers: the unsampled ones are never absorbed, so
        // the attachment pass has real work to replay deterministically.
        for i in 0..30 {
            ps.push(&[200.0 + 10.0 * i as f64, -50.0]);
        }
        let config = DbsvecConfig::new(3.0, 6).with_uniform_sampling(0.4, 17);
        let baseline = Dbsvec::new(config.clone().with_threads(1)).fit(&ps);
        assert!(baseline.stats().attachment_candidates > 0);
        for threads in [2usize, 4, 8] {
            let par = Dbsvec::new(config.clone().with_threads(threads)).fit(&ps);
            assert_eq!(baseline.labels(), par.labels(), "threads={threads}");
            assert_eq!(baseline.stats(), par.stats(), "threads={threads}");
            assert_eq!(
                baseline.core_points(),
                par.core_points(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn sampled_cores_are_a_subset_of_the_candidates() {
        let ps = blobs(&[[0.0, 0.0], [30.0, 0.0]], 120, 1.1, 29);
        let config = DbsvecConfig::new(3.0, 6).with_uniform_sampling(0.5, 23);
        let candidates =
            crate::sample::sample_candidates(&ps, &config.sampling).expect("a strict subsample");
        let result = Dbsvec::new(config).fit(&ps);
        for &c in result.core_points() {
            assert!(
                candidates.binary_search(&c).is_ok(),
                "core {c} was never a candidate"
            );
        }
    }

    #[test]
    fn stats_account_for_every_phase() {
        let ps = blobs(&[[0.0, 0.0], [30.0, 0.0]], 80, 1.1, 33);
        let result = Dbsvec::new(DbsvecConfig::new(3.0, 6)).fit(&ps);
        let s = result.stats();
        assert!(s.seeds >= 2);
        assert!(s.svdd_trainings >= s.seeds);
        assert!(s.support_vectors >= s.core_support_vectors);
        assert!(s.range_queries > 0);
        assert!(s.max_target_size > 0);
    }
}
