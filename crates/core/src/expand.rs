//! Support vector expansion (paper Algorithm 3).
//!
//! Given a freshly seeded sub-cluster, repeatedly:
//!
//! 1. train (weighted) SVDD on the current target set,
//! 2. run ε-range queries **only on the support vectors**,
//! 3. absorb the newly discovered neighbors of *core* support vectors into
//!    the sub-cluster (merging with other sub-clusters through overlapping
//!    core points),
//!
//! until a round discovers nothing new. The paper presents this as
//! recursion; the loop below is the equivalent iteration (each round only
//! depends on the points added by the previous one), which avoids unbounded
//! stack depth on datasets whose clusters span thousands of expansion
//! rounds.

use dbsvec_geometry::PointId;
use dbsvec_index::RangeIndex;
use dbsvec_obs::{Event, Phase};
use dbsvec_svdd::{
    params::nu_to_c, penalty_weights, GaussianKernel, IncrementalTarget, SolverSession, SvddProblem,
};

use crate::parallel::batch_range_queries;
use crate::runner::RunState;

/// Expands the sub-cluster `raw_cid`, seeded with `initial_members`.
pub(crate) fn sv_expand_cluster<I: RangeIndex + Sync>(
    state: &mut RunState<'_, I>,
    raw_cid: u32,
    initial_members: Vec<PointId>,
) {
    // With incremental learning off (the DBSVEC\IL ablation) the target set
    // is the whole sub-cluster: an unreachable threshold disables eviction.
    let threshold = if state.config.incremental {
        state.config.learning_threshold
    } else {
        u32::MAX
    };
    let mut target = IncrementalTarget::new(threshold);
    target.add_new(&initial_members);
    // One solver session per sub-cluster: consecutive rounds reuse the
    // previous α (warm start) and the σ-invariant distance rows.
    let mut session = SolverSession::new();

    state.obs.span_enter(Phase::SvExpand);
    let mut neighborhood: Vec<PointId> = Vec::new();
    let mut round = 0usize;
    while !target.is_empty() {
        round += 1;
        let target_size = target.len();
        state.stats.expansion_rounds += 1;
        state.stats.max_target_size = state.stats.max_target_size.max(target_size);

        state.obs.span_enter(Phase::SvddTrain);
        let model = train_svdd(state, &target, &mut session);
        state.obs.span_exit(Phase::SvddTrain);
        let diag = model.diagnostics();
        // Fixed-point microunits: the one place the f64 violation is
        // encoded, so stats and the replayed trace agree exactly.
        let violation_e6 = (diag.initial_kkt_violation * 1e6).round() as u64;
        state.stats.svdd_trainings += 1;
        state.stats.smo_iterations += model.iterations() as u64;
        state.stats.warm_started_trainings += diag.warm_started as u64;
        state.stats.iterations_exhausted += !diag.converged as u64;
        state.stats.shrunk_variables += diag.shrunk_peak as u64;
        state.stats.initial_kkt_violation_e6 += violation_e6;
        state.obs.event(&Event::SmoSolve {
            target_size,
            iterations: model.iterations(),
            cache_hits: diag.cache.hits,
            cache_misses: diag.cache.misses,
            warm_started: diag.warm_started,
            converged: diag.converged,
            shrunk: diag.shrunk_peak,
            initial_kkt_violation_e6: violation_e6,
        });
        let support_vectors = model.support_vectors();
        state.stats.support_vectors += support_vectors.len() as u64;
        target.after_training();

        let n_sv = support_vectors.len();
        let mut n_core_sv = 0usize;
        let mut newly_added: Vec<PointId> = Vec::new();
        if state.threads <= 1 {
            // Sequential escape hatch: the exact original query-then-absorb
            // loop, one support vector at a time.
            for sv in support_vectors {
                if !state.is_candidate(sv) {
                    // Sampled mode: a support vector outside the drawn
                    // subsample can never be core, so querying it cannot
                    // expand the cluster (Def. 6) — skip without a query.
                    continue;
                }
                if state.queried[sv as usize] {
                    // Already materialized and absorbed in an earlier round
                    // (or as a seed): a repeat query cannot discover anything
                    // new.
                    continue;
                }
                state.range_query(sv, &mut neighborhood);
                if neighborhood.len() < state.config.min_pts {
                    continue; // non-core support vector: cannot expand (Def. 6)
                }
                state.stats.core_support_vectors += 1;
                n_core_sv += 1;
                // The borrow checker cannot see that `absorb_or_merge` leaves
                // `neighborhood` alone, so iterate by index over a swap.
                let neigh = std::mem::take(&mut neighborhood);
                for &j in &neigh {
                    state.absorb_or_merge(j, raw_cid, &mut newly_added);
                }
                neighborhood = neigh;
            }
        } else {
            // Batched path: fan the round's range queries out across worker
            // threads, then replay accounting and absorption on this thread
            // in support-vector order. Equivalent to the sequential loop
            // because a round's support vectors are distinct and a query
            // only marks its own probe `queried` — no query in the batch can
            // flip another's skip decision — so filtering up front sees the
            // same pending set the one-at-a-time check would.
            let pending: Vec<PointId> = support_vectors
                .iter()
                .copied()
                .filter(|&sv| state.is_candidate(sv) && !state.queried[sv as usize])
                .collect();
            let batches = batch_range_queries(
                state.points,
                state.index,
                state.config.eps,
                &pending,
                state.threads,
            );
            for (sv, neigh) in pending.into_iter().zip(batches) {
                // `neigh` may legitimately be empty (an index is free to
                // report nothing inside ε, even the probe itself); the
                // min_pts gate below handles that without indexing into it.
                state.record_range_query(sv, neigh.len());
                if neigh.len() < state.config.min_pts {
                    continue; // non-core support vector: cannot expand (Def. 6)
                }
                state.stats.core_support_vectors += 1;
                n_core_sv += 1;
                for &j in &neigh {
                    state.absorb_or_merge(j, raw_cid, &mut newly_added);
                }
            }
        }

        state.obs.event(&Event::ExpansionRound {
            cluster: raw_cid,
            round,
            target_size,
            n_sv,
            n_core_sv,
            smo_iters: model.iterations(),
        });

        if newly_added.is_empty() {
            // Nothing new: the surviving target points were already trained
            // on, so another round would reproduce the same support vectors.
            break;
        }
        target.add_new(&newly_added);
    }
    state.obs.span_exit(Phase::SvExpand);
}

/// Trains one SVDD model over the current target set, honoring the
/// configuration's weighting and kernel-width choices.
fn train_svdd<I: RangeIndex>(
    state: &mut RunState<'_, I>,
    target: &IncrementalTarget,
    session: &mut SolverSession,
) -> dbsvec_svdd::SvddModel {
    let ids = target.ids();
    let sigma = state.config.kernel_width.resolve(state.points, ids);
    let kernel = GaussianKernel::from_width(sigma);
    let nu = state.config.resolve_nu(state.points.dims(), ids.len());
    let c = nu_to_c(nu, ids.len());

    // One knob drives the whole parallel path: the fit's resolved thread
    // budget overrides whatever the SMO options carried.
    let mut smo = state.config.smo;
    smo.threads = state.threads;
    let problem = SvddProblem::new(state.points, ids, kernel)
        .with_options(smo)
        .with_session(session);
    if state.config.weighted {
        let weights = penalty_weights(
            state.points,
            ids,
            target.counts(),
            kernel,
            c,
            state.config.weight_options,
        );
        let bounds: Vec<f64> = weights.into_iter().map(|w| w * c).collect();
        problem.with_bounds(bounds).solve()
    } else {
        problem.with_nu(nu).solve()
    }
}
