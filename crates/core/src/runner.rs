//! Shared mutable state threaded through the phases of a DBSVEC run.

use dbsvec_geometry::{PointId, PointSet};
use dbsvec_index::RangeIndex;
use dbsvec_obs::{Event, Observer};

use crate::config::DbsvecConfig;
use crate::labels::WorkingLabels;
use crate::stats::DbsvecStats;
use crate::unionfind::UnionFind;

/// Memoized core-point status.
#[derive(Clone, Copy, PartialEq, Eq)]
pub(crate) enum CoreStatus {
    Unknown,
    Core,
    NonCore,
}

/// Everything the initialization, expansion, merging, and noise phases
/// share. Borrowed mutably by each phase in turn.
pub(crate) struct RunState<'a, I: RangeIndex> {
    pub points: &'a PointSet,
    pub index: &'a I,
    pub config: &'a DbsvecConfig,
    pub labels: WorkingLabels,
    pub uf: UnionFind,
    pub core_status: Vec<CoreStatus>,
    /// Potential noise points with the ε-neighborhood captured at
    /// initialization (paper: "N_ε(NoiseList[i]) has been obtained in
    /// initialization"). Non-core neighborhoods hold < MinPts entries, so
    /// this costs O(MinPts·l) memory as §III-D states.
    pub noise_list: Vec<(PointId, Vec<PointId>)>,
    /// Points whose full ε-neighborhood has already been materialized and
    /// absorbed. Re-querying such a point is a no-op (every neighbor is
    /// already labeled into its cluster), so expansion skips it. This caps
    /// DBSVEC's materializing queries at n even in regimes where SVDD keeps
    /// re-selecting the same boundary points across rounds.
    pub queried: Vec<bool>,
    /// Core-candidacy mask for the sampled fit mode: `None` means every
    /// point is a candidate (the exact fit). Non-candidates are never
    /// seeded, never queried by expansion, and can never test core — they
    /// end the main loop clustered (absorbed from a candidate's
    /// neighborhood) or unclassified, and the attachment pass resolves the
    /// latter.
    pub candidates: Option<Vec<bool>>,
    /// Effective worker count for the parallel fit path, resolved once from
    /// `config.parallel` so every phase (and every SMO training) agrees.
    pub threads: usize,
    pub stats: DbsvecStats,
    /// Observer every phase reports into. The stats counters above stay
    /// authoritative; the observer sees the same increments as events, so a
    /// recorded stream replays to identical counts (`dbsvec-obs`).
    pub obs: &'a mut dyn Observer,
}

impl<'a, I: RangeIndex> RunState<'a, I> {
    pub fn new(
        points: &'a PointSet,
        index: &'a I,
        config: &'a DbsvecConfig,
        obs: &'a mut dyn Observer,
    ) -> Self {
        let n = points.len();
        Self {
            points,
            index,
            config,
            labels: WorkingLabels::new(n),
            uf: UnionFind::new(),
            core_status: vec![CoreStatus::Unknown; n],
            noise_list: Vec::new(),
            queried: vec![false; n],
            candidates: None,
            threads: config.parallel.resolve(),
            stats: DbsvecStats::default(),
            obs,
        }
    }

    /// Materializing ε-range query with statistics accounting and core-status
    /// memoization.
    pub fn range_query(&mut self, id: PointId, out: &mut Vec<PointId>) {
        out.clear();
        self.index
            .range(self.points.point(id), self.config.eps, out);
        self.record_range_query(id, out.len());
    }

    /// Whether `id` may test core. Always true on exact fits; sampled fits
    /// restrict candidacy to the drawn subsample.
    pub fn is_candidate(&self, id: PointId) -> bool {
        self.candidates
            .as_ref()
            .map_or(true, |mask| mask[id as usize])
    }

    /// Accounting for a materializing range query whose result was computed
    /// elsewhere (the batched expansion path runs the index probes on worker
    /// threads, then replays this bookkeeping on the driving thread in
    /// support-vector order so stats, events, and memoization are identical
    /// to the sequential path).
    pub fn record_range_query(&mut self, id: PointId, result_len: usize) {
        self.stats.range_queries += 1;
        self.obs.event(&Event::RangeQuery {
            probe: id,
            result_len,
        });
        self.queried[id as usize] = true;
        // Only candidates can hold core status: the sampled mode's density
        // estimate lives on the subsample, so the discovered core set (and
        // the `ClusterModel` built from it) is a subset of the candidates.
        self.core_status[id as usize] =
            if result_len >= self.config.min_pts && self.is_candidate(id) {
                CoreStatus::Core
            } else {
                CoreStatus::NonCore
            };
    }

    /// Memoized core test (issues a counting query on first use).
    /// Non-candidates answer false without a query.
    pub fn is_core(&mut self, id: PointId) -> bool {
        if !self.is_candidate(id) {
            return false;
        }
        match self.core_status[id as usize] {
            CoreStatus::Core => true,
            CoreStatus::NonCore => false,
            CoreStatus::Unknown => {
                let count = self
                    .index
                    .count_range(self.points.point(id), self.config.eps);
                self.stats.range_queries += 1;
                self.obs.event(&Event::RangeQuery {
                    probe: id,
                    result_len: count,
                });
                let core = count >= self.config.min_pts;
                self.core_status[id as usize] = if core {
                    CoreStatus::Core
                } else {
                    CoreStatus::NonCore
                };
                core
            }
        }
    }

    /// Handles one neighbor during initialization or expansion: absorbs
    /// unclassified/noise points into `raw_cid` (recording them in
    /// `absorbed`) and merges sub-clusters through overlapping core points
    /// (paper Lemma 3).
    pub fn absorb_or_merge(&mut self, j: PointId, raw_cid: u32, absorbed: &mut Vec<PointId>) {
        if self.labels.is_unclassified(j) || self.labels.is_noise(j) {
            self.labels.set_cluster(j, raw_cid);
            absorbed.push(j);
        } else if let Some(other) = self.labels.cluster(j) {
            if !self.uf.same(other, raw_cid) && self.is_core(j) {
                self.uf.union(other, raw_cid);
                self.stats.merges += 1;
                self.obs.event(&Event::Merge {
                    existing: other,
                    expanding: raw_cid,
                });
            }
        }
    }
}
