//! Microbenchmark: evaluation metrics.
//!
//! The contingency-table recall must stay effectively linear — the paper
//! notes that computing recall is what limits accuracy experiments to
//! small datasets, so the evaluation substrate must not be the bottleneck
//! in ours.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use dbsvec_datasets::gaussian_mixture;
use dbsvec_geometry::rng::SplitMix64;
use dbsvec_metrics::{
    adjusted_rand_index, davies_bouldin_separation, normalized_mutual_information, recall,
    silhouette_compactness,
};

fn random_labels(n: usize, clusters: u32, noise_pct: f64, seed: u64) -> Vec<Option<u32>> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| {
            if rng.next_f64() < noise_pct {
                None
            } else {
                Some(rng.next_below(clusters as u64) as u32)
            }
        })
        .collect()
}

fn bench_pair_metrics(c: &mut Criterion) {
    let mut group = c.benchmark_group("pair_metrics");
    group.sample_size(10);
    for &n in &[10_000usize, 100_000, 1_000_000] {
        let a = random_labels(n, 50, 0.05, 1);
        let b = random_labels(n, 50, 0.05, 2);
        group.bench_with_input(BenchmarkId::new("recall", n), &n, |bench, _| {
            bench.iter(|| recall(black_box(&a), black_box(&b)))
        });
        group.bench_with_input(BenchmarkId::new("ari", n), &n, |bench, _| {
            bench.iter(|| adjusted_rand_index(black_box(&a), black_box(&b)))
        });
        group.bench_with_input(BenchmarkId::new("nmi", n), &n, |bench, _| {
            bench.iter(|| normalized_mutual_information(black_box(&a), black_box(&b)))
        });
    }
    group.finish();
}

fn bench_internal_metrics(c: &mut Criterion) {
    let mut group = c.benchmark_group("internal_metrics");
    group.sample_size(10);
    let ds = gaussian_mixture(2000, 8, 10, 800.0, 1e5, 3);
    group.bench_function("silhouette_2k", |b| {
        b.iter(|| silhouette_compactness(black_box(&ds.points), &ds.truth))
    });
    group.bench_function("davies_bouldin_2k", |b| {
        b.iter(|| davies_bouldin_separation(black_box(&ds.points), &ds.truth))
    });
    group.finish();
}

criterion_group!(benches, bench_pair_metrics, bench_internal_metrics);
criterion_main!(benches);
