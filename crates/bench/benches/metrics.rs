//! Microbenchmark: evaluation metrics.
//!
//! The contingency-table recall must stay effectively linear — the paper
//! notes that computing recall is what limits accuracy experiments to
//! small datasets, so the evaluation substrate must not be the bottleneck
//! in ours.

use dbsvec_bench::micro::{black_box, Runner};
use dbsvec_datasets::gaussian_mixture;
use dbsvec_geometry::rng::SplitMix64;
use dbsvec_metrics::{
    adjusted_rand_index, davies_bouldin_separation, normalized_mutual_information, recall,
    silhouette_compactness,
};

fn main() {
    let runner = Runner::from_env("metrics");
    bench_pair_metrics(&runner);
    bench_internal_metrics(&runner);
}

fn random_labels(n: usize, clusters: u32, noise_pct: f64, seed: u64) -> Vec<Option<u32>> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| {
            if rng.next_f64() < noise_pct {
                None
            } else {
                Some(rng.next_below(clusters as u64) as u32)
            }
        })
        .collect()
}

fn bench_pair_metrics(runner: &Runner) {
    println!("pair_metrics");
    let sizes = if runner.is_quick() {
        vec![10_000usize]
    } else {
        vec![10_000usize, 100_000, 1_000_000]
    };
    for &n in &sizes {
        let a = random_labels(n, 50, 0.05, 1);
        let b = random_labels(n, 50, 0.05, 2);
        runner.bench(&format!("recall/{n}"), || {
            recall(black_box(&a), black_box(&b))
        });
        runner.bench(&format!("ari/{n}"), || {
            adjusted_rand_index(black_box(&a), black_box(&b))
        });
        runner.bench(&format!("nmi/{n}"), || {
            normalized_mutual_information(black_box(&a), black_box(&b))
        });
    }
}

fn bench_internal_metrics(runner: &Runner) {
    let n = runner.size(2000, 500);
    println!("internal_metrics (n={n})");
    let ds = gaussian_mixture(n, 8, 10, 800.0, 1e5, 3);
    runner.bench("silhouette", || {
        silhouette_compactness(black_box(&ds.points), &ds.truth)
    });
    runner.bench("davies_bouldin", || {
        davies_bouldin_separation(black_box(&ds.points), &ds.truth)
    });
}
