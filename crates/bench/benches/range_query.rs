//! Microbenchmark: the four range-query engines.
//!
//! Every algorithm in the workspace reduces to ε-range queries, so the
//! engine choice dominates end-to-end cost. Expected ordering on clustered
//! data: grid ≈ kd-tree ≈ R\*-tree ≪ linear scan, with build costs in the
//! opposite order.

use dbsvec_bench::micro::{black_box, Runner};
use dbsvec_datasets::{random_walk_clusters, RandomWalkConfig};
use dbsvec_geometry::PointSet;
use dbsvec_index::{BallTree, GridIndex, KdTree, LinearScan, RStarTree, RangeIndex};

fn main() {
    let runner = Runner::from_env("range_query");
    bench_queries(&runner);
    bench_builds(&runner);
}

fn workload(n: usize, d: usize) -> PointSet {
    random_walk_clusters(&RandomWalkConfig::paper_default(n, d), 42).points
}

fn queries(points: &PointSet, count: usize) -> Vec<Vec<f64>> {
    (0..count)
        .map(|i| points.point(((i * 97) % points.len()) as u32).to_vec())
        .collect()
}

fn bench_queries(runner: &Runner) {
    println!("range_query (50 queries per sample)");
    let eps = 5000.0;
    let sizes = if runner.is_quick() {
        vec![2_000usize]
    } else {
        vec![10_000usize, 50_000]
    };
    for &n in &sizes {
        let points = workload(n, 8);
        let qs = queries(&points, 50);
        let mut out = Vec::new();

        let linear = LinearScan::build(&points);
        runner.bench(&format!("linear/{n}"), || {
            for q in &qs {
                out.clear();
                linear.range(black_box(q), eps, &mut out);
            }
            out.len()
        });

        let kd = KdTree::build(&points);
        runner.bench(&format!("kdtree/{n}"), || {
            for q in &qs {
                out.clear();
                kd.range(black_box(q), eps, &mut out);
            }
            out.len()
        });

        let rstar = RStarTree::build(&points);
        runner.bench(&format!("rstar/{n}"), || {
            for q in &qs {
                out.clear();
                rstar.range(black_box(q), eps, &mut out);
            }
            out.len()
        });

        let grid = GridIndex::build(&points, eps);
        runner.bench(&format!("grid/{n}"), || {
            for q in &qs {
                out.clear();
                grid.range(black_box(q), eps, &mut out);
            }
            out.len()
        });

        let ball = BallTree::build(&points);
        runner.bench(&format!("balltree/{n}"), || {
            for q in &qs {
                out.clear();
                ball.range(black_box(q), eps, &mut out);
            }
            out.len()
        });
    }
}

fn bench_builds(runner: &Runner) {
    let n = runner.size(50_000, 5_000);
    println!("index_build (n={n})");
    let points = workload(n, 8);
    runner.bench("kdtree", || KdTree::build(black_box(&points)).node_count());
    runner.bench("rstar_bulk", || {
        RStarTree::build(black_box(&points)).height()
    });
    runner.bench("grid", || {
        GridIndex::build(black_box(&points), 5000.0).occupied_cells()
    });
    runner.bench("balltree", || {
        BallTree::build(black_box(&points)).node_count()
    });
}
