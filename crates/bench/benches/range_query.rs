//! Microbenchmark: the four range-query engines.
//!
//! Every algorithm in the workspace reduces to ε-range queries, so the
//! engine choice dominates end-to-end cost. Expected ordering on clustered
//! data: grid ≈ kd-tree ≈ R\*-tree ≪ linear scan, with build costs in the
//! opposite order.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use dbsvec_datasets::{random_walk_clusters, RandomWalkConfig};
use dbsvec_geometry::PointSet;
use dbsvec_index::{BallTree, GridIndex, KdTree, LinearScan, RStarTree, RangeIndex};

fn workload(n: usize, d: usize) -> PointSet {
    random_walk_clusters(&RandomWalkConfig::paper_default(n, d), 42).points
}

fn queries(points: &PointSet, count: usize) -> Vec<Vec<f64>> {
    (0..count)
        .map(|i| points.point(((i * 97) % points.len()) as u32).to_vec())
        .collect()
}

fn bench_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("range_query");
    group.sample_size(10);
    let eps = 5000.0;
    for &n in &[10_000usize, 50_000] {
        let points = workload(n, 8);
        let qs = queries(&points, 50);
        let mut out = Vec::new();

        let linear = LinearScan::build(&points);
        group.bench_with_input(BenchmarkId::new("linear", n), &n, |b, _| {
            b.iter(|| {
                for q in &qs {
                    out.clear();
                    linear.range(black_box(q), eps, &mut out);
                }
                out.len()
            })
        });

        let kd = KdTree::build(&points);
        group.bench_with_input(BenchmarkId::new("kdtree", n), &n, |b, _| {
            b.iter(|| {
                for q in &qs {
                    out.clear();
                    kd.range(black_box(q), eps, &mut out);
                }
                out.len()
            })
        });

        let rstar = RStarTree::build(&points);
        group.bench_with_input(BenchmarkId::new("rstar", n), &n, |b, _| {
            b.iter(|| {
                for q in &qs {
                    out.clear();
                    rstar.range(black_box(q), eps, &mut out);
                }
                out.len()
            })
        });

        let grid = GridIndex::build(&points, eps);
        group.bench_with_input(BenchmarkId::new("grid", n), &n, |b, _| {
            b.iter(|| {
                for q in &qs {
                    out.clear();
                    grid.range(black_box(q), eps, &mut out);
                }
                out.len()
            })
        });

        let ball = BallTree::build(&points);
        group.bench_with_input(BenchmarkId::new("balltree", n), &n, |b, _| {
            b.iter(|| {
                for q in &qs {
                    out.clear();
                    ball.range(black_box(q), eps, &mut out);
                }
                out.len()
            })
        });
    }
    group.finish();
}

fn bench_builds(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_build");
    group.sample_size(10);
    let points = workload(50_000, 8);
    group.bench_function("kdtree", |b| {
        b.iter(|| KdTree::build(black_box(&points)).node_count())
    });
    group.bench_function("rstar_bulk", |b| {
        b.iter(|| RStarTree::build(black_box(&points)).height())
    });
    group.bench_function("grid", |b| {
        b.iter(|| GridIndex::build(black_box(&points), 5000.0).occupied_cells())
    });
    group.bench_function("balltree", |b| {
        b.iter(|| BallTree::build(black_box(&points)).node_count())
    });
    group.finish();
}

criterion_group!(benches, bench_queries, bench_builds);
criterion_main!(benches);
