//! Microbenchmark: end-to-end clustering, DBSVEC vs every baseline.
//!
//! The Criterion counterpart of the Fig. 6 harness at a fixed, small
//! workload — useful for catching performance regressions in CI. Expected
//! ordering on the 8-d random-walk workload: DBSVEC fastest among the
//! density-based methods, exact DBSCAN next, DBSCAN-LSH last.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use dbsvec_baselines::{
    Dbscan, DbscanLsh, FDbscan, Hdbscan, KMeans, NqDbscan, ParallelDbscan, RhoApproxDbscan,
};
use dbsvec_core::{Dbsvec, DbsvecConfig};
use dbsvec_datasets::{random_walk_clusters, RandomWalkConfig};
use dbsvec_index::KdTree;

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("clustering_20k_8d");
    group.sample_size(10);
    let ds = random_walk_clusters(&RandomWalkConfig::paper_default(20_000, 8), 42);
    let points = &ds.points;
    let (eps, min_pts) = (5000.0, 100);

    group.bench_function("dbsvec", |b| {
        b.iter(|| {
            Dbsvec::new(DbsvecConfig::new(eps, min_pts))
                .fit(black_box(points))
                .num_clusters()
        })
    });
    group.bench_function("dbsvec_min", |b| {
        b.iter(|| {
            Dbsvec::new(DbsvecConfig::new(eps, min_pts).minimal_nu())
                .fit(black_box(points))
                .num_clusters()
        })
    });
    group.bench_function("r_dbscan", |b| {
        b.iter(|| {
            Dbscan::new(eps, min_pts)
                .fit(black_box(points))
                .clustering
                .num_clusters()
        })
    });
    group.bench_function("kd_dbscan", |b| {
        b.iter(|| {
            let index = KdTree::build(points);
            Dbscan::new(eps, min_pts)
                .fit_with_index(black_box(points), &index)
                .clustering
                .num_clusters()
        })
    });
    group.bench_function("rho_approx", |b| {
        b.iter(|| {
            RhoApproxDbscan::new(eps, min_pts, 0.001)
                .fit(black_box(points))
                .clustering
                .num_clusters()
        })
    });
    group.bench_function("nq_dbscan", |b| {
        b.iter(|| {
            NqDbscan::new(eps, min_pts)
                .fit(black_box(points))
                .clustering
                .num_clusters()
        })
    });
    group.bench_function("dbscan_lsh", |b| {
        b.iter(|| {
            DbscanLsh::new(eps, min_pts, 42)
                .fit(black_box(points))
                .clustering
                .num_clusters()
        })
    });
    group.bench_function("kmeans", |b| {
        b.iter(|| {
            KMeans::new(10, 42)
                .fit(black_box(points))
                .clustering
                .num_clusters()
        })
    });
    group.bench_function("fdbscan", |b| {
        b.iter(|| {
            FDbscan::new(eps, min_pts)
                .fit(black_box(points))
                .clustering
                .num_clusters()
        })
    });
    group.bench_function("parallel_dbscan", |b| {
        b.iter(|| {
            ParallelDbscan::new(eps, min_pts, 0)
                .fit(black_box(points))
                .clustering
                .num_clusters()
        })
    });
    group.finish();

    // HDBSCAN's O(n^2) MST dominates; bench it at a smaller n.
    let small = random_walk_clusters(&RandomWalkConfig::paper_default(5_000, 8), 42);
    let mut hgroup = c.benchmark_group("hdbscan_5k_8d");
    hgroup.sample_size(10);
    hgroup.bench_function("hdbscan", |b| {
        b.iter(|| {
            Hdbscan::new(5, 50)
                .fit(black_box(&small.points))
                .clustering
                .num_clusters()
        })
    });
    hgroup.finish();
}

/// Ablation bench: the design choices DESIGN.md calls out.
fn bench_ablations(c: &mut Criterion) {
    let mut group = c.benchmark_group("dbsvec_ablations_10k_8d");
    group.sample_size(10);
    let ds = random_walk_clusters(&RandomWalkConfig::paper_default(10_000, 8), 7);
    let points = &ds.points;
    let (eps, min_pts) = (5000.0, 100);

    group.bench_function("full", |b| {
        b.iter(|| {
            Dbsvec::new(DbsvecConfig::new(eps, min_pts))
                .fit(black_box(points))
                .num_clusters()
        })
    });
    group.bench_function("no_weights", |b| {
        b.iter(|| {
            Dbsvec::new(DbsvecConfig::new(eps, min_pts).without_weights())
                .fit(black_box(points))
                .num_clusters()
        })
    });
    group.bench_function("no_incremental", |b| {
        b.iter(|| {
            Dbsvec::new(DbsvecConfig::new(eps, min_pts).without_incremental_learning())
                .fit(black_box(points))
                .num_clusters()
        })
    });
    group.bench_function("random_kernel", |b| {
        b.iter(|| {
            Dbsvec::new(DbsvecConfig::new(eps, min_pts).with_random_kernel_width(3))
                .fit(black_box(points))
                .num_clusters()
        })
    });
    // Ablation of *our* substitution: literal Eq. 5 weights (O(ñ²)) vs the
    // default O(ñ) centroid proxy.
    group.bench_function("exact_kernel_weights", |b| {
        b.iter(|| {
            Dbsvec::new(DbsvecConfig::new(eps, min_pts).with_exact_kernel_weights())
                .fit(black_box(points))
                .num_clusters()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_end_to_end, bench_ablations);
criterion_main!(benches);
