//! Microbenchmark: end-to-end clustering, DBSVEC vs every baseline.
//!
//! The microbench counterpart of the Fig. 6 harness at a fixed workload —
//! useful for catching performance regressions. Expected ordering on the
//! 8-d random-walk workload: DBSVEC fastest among the density-based
//! methods, exact DBSCAN next, DBSCAN-LSH last.
//!
//! Also checks the observability overhead claim: `fit` vs
//! `fit_observed(&mut NoopObserver)` must be within noise (±2%), since the
//! no-op observer's empty callbacks inline away.

use dbsvec_baselines::{
    Dbscan, DbscanLsh, FDbscan, Hdbscan, KMeans, NqDbscan, ParallelDbscan, RhoApproxDbscan,
};
use dbsvec_bench::micro::{black_box, Runner};
use dbsvec_core::{Dbsvec, DbsvecConfig};
use dbsvec_datasets::{random_walk_clusters, RandomWalkConfig};
use dbsvec_index::KdTree;
use dbsvec_obs::NoopObserver;

fn main() {
    let runner = Runner::from_env("clustering");
    bench_end_to_end(&runner);
    bench_noop_observer_overhead(&runner);
    bench_ablations(&runner);
}

fn bench_end_to_end(runner: &Runner) {
    let n = runner.size(20_000, 2_000);
    println!("clustering_{}k_8d", n / 1000);
    let ds = random_walk_clusters(&RandomWalkConfig::paper_default(n, 8), 42);
    let points = &ds.points;
    let (eps, min_pts) = (5000.0, 100);

    runner.bench("dbsvec", || {
        Dbsvec::new(DbsvecConfig::new(eps, min_pts))
            .fit(black_box(points))
            .num_clusters()
    });
    runner.bench("dbsvec_min", || {
        Dbsvec::new(DbsvecConfig::new(eps, min_pts).minimal_nu())
            .fit(black_box(points))
            .num_clusters()
    });
    runner.bench("r_dbscan", || {
        Dbscan::new(eps, min_pts)
            .fit(black_box(points))
            .clustering
            .num_clusters()
    });
    runner.bench("kd_dbscan", || {
        let index = KdTree::build(points);
        Dbscan::new(eps, min_pts)
            .fit_with_index(black_box(points), &index)
            .clustering
            .num_clusters()
    });
    runner.bench("rho_approx", || {
        RhoApproxDbscan::new(eps, min_pts, 0.001)
            .fit(black_box(points))
            .clustering
            .num_clusters()
    });
    runner.bench("nq_dbscan", || {
        NqDbscan::new(eps, min_pts)
            .fit(black_box(points))
            .clustering
            .num_clusters()
    });
    runner.bench("dbscan_lsh", || {
        DbscanLsh::new(eps, min_pts, 42)
            .fit(black_box(points))
            .clustering
            .num_clusters()
    });
    runner.bench("kmeans", || {
        KMeans::new(10, 42)
            .fit(black_box(points))
            .clustering
            .num_clusters()
    });
    runner.bench("fdbscan", || {
        FDbscan::new(eps, min_pts)
            .fit(black_box(points))
            .clustering
            .num_clusters()
    });
    runner.bench("parallel_dbscan", || {
        ParallelDbscan::new(eps, min_pts, 0)
            .fit(black_box(points))
            .clustering
            .num_clusters()
    });

    // HDBSCAN's O(n^2) MST dominates; bench it at a smaller n.
    let small_n = runner.size(5_000, 1_000);
    let small = random_walk_clusters(&RandomWalkConfig::paper_default(small_n, 8), 42);
    println!("hdbscan_{}k_8d", small_n / 1000);
    runner.bench("hdbscan", || {
        Hdbscan::new(5, 50)
            .fit(black_box(&small.points))
            .clustering
            .num_clusters()
    });
}

/// The acceptance check for the observer seam: the NoopObserver path must
/// cost the same as the plain path (empty callbacks inline to nothing).
fn bench_noop_observer_overhead(runner: &Runner) {
    let n = runner.size(20_000, 2_000);
    println!("noop_observer_overhead_{}k_8d", n / 1000);
    let ds = random_walk_clusters(&RandomWalkConfig::paper_default(n, 8), 42);
    let points = &ds.points;
    let (eps, min_pts) = (5000.0, 100);

    let plain = runner.bench("dbsvec_fit", || {
        Dbsvec::new(DbsvecConfig::new(eps, min_pts))
            .fit(black_box(points))
            .num_clusters()
    });
    let observed = runner.bench("dbsvec_fit_observed_noop", || {
        Dbsvec::new(DbsvecConfig::new(eps, min_pts))
            .fit_observed(black_box(points), &mut NoopObserver)
            .num_clusters()
    });
    println!(
        "  noop observer overhead: {:+.2}% (target: within +/-2%)",
        (observed / plain - 1.0) * 100.0
    );
}

/// Ablation bench: the design choices DESIGN.md calls out.
fn bench_ablations(runner: &Runner) {
    let n = runner.size(10_000, 2_000);
    println!("dbsvec_ablations_{}k_8d", n / 1000);
    let ds = random_walk_clusters(&RandomWalkConfig::paper_default(n, 8), 7);
    let points = &ds.points;
    let (eps, min_pts) = (5000.0, 100);

    runner.bench("full", || {
        Dbsvec::new(DbsvecConfig::new(eps, min_pts))
            .fit(black_box(points))
            .num_clusters()
    });
    runner.bench("no_weights", || {
        Dbsvec::new(DbsvecConfig::new(eps, min_pts).without_weights())
            .fit(black_box(points))
            .num_clusters()
    });
    runner.bench("no_incremental", || {
        Dbsvec::new(DbsvecConfig::new(eps, min_pts).without_incremental_learning())
            .fit(black_box(points))
            .num_clusters()
    });
    runner.bench("random_kernel", || {
        Dbsvec::new(DbsvecConfig::new(eps, min_pts).with_random_kernel_width(3))
            .fit(black_box(points))
            .num_clusters()
    });
    // Ablation of *our* substitution: literal Eq. 5 weights (O(ñ²)) vs the
    // default O(ñ) centroid proxy.
    runner.bench("exact_kernel_weights", || {
        Dbsvec::new(DbsvecConfig::new(eps, min_pts).with_exact_kernel_weights())
            .fit(black_box(points))
            .num_clusters()
    });
}
