//! Microbenchmark: end-to-end clustering, DBSVEC vs every baseline.
//!
//! The microbench counterpart of the Fig. 6 harness at a fixed workload —
//! useful for catching performance regressions. Expected ordering on the
//! 8-d random-walk workload: DBSVEC fastest among the density-based
//! methods, exact DBSCAN next, DBSCAN-LSH last.
//!
//! Also checks the observability overhead claims: `fit` vs
//! `fit_observed(&mut NoopObserver)` and plain serving vs the noop-observed
//! serving path must be within noise (±2%) — disabled instrumentation is
//! supposed to inline away. The envelope is printed on every run and
//! enforced as a hard assert under `MICROBENCH_ENFORCE=1` (quick-mode
//! sampling is too noisy for CI to assert unconditionally).

use dbsvec_baselines::{
    Dbscan, DbscanLsh, FDbscan, Hdbscan, KMeans, NqDbscan, ParallelDbscan, RhoApproxDbscan,
};
use dbsvec_bench::micro::{black_box, Runner};
use dbsvec_core::{Dbsvec, DbsvecConfig};
use dbsvec_datasets::{random_walk_clusters, RandomWalkConfig};
use dbsvec_engine::{Engine, ModelArtifact, MonitorConfig};
use dbsvec_geometry::rng::SplitMix64;
use dbsvec_index::KdTree;
use dbsvec_obs::NoopObserver;

fn main() {
    let runner = Runner::from_env("clustering");
    bench_end_to_end(&runner);
    bench_noop_observer_overhead(&runner);
    bench_serve_telemetry_overhead(&runner);
    bench_monitor_overhead(&runner);
    bench_ablations(&runner);
}

/// Prints the overhead of `candidate` relative to `baseline` and, under
/// `MICROBENCH_ENFORCE=1`, asserts it stays inside `±pct`.
fn check_envelope(label: &str, baseline_secs: f64, candidate_secs: f64, pct: f64) {
    let delta = (candidate_secs / baseline_secs - 1.0) * 100.0;
    println!("  {label}: {delta:+.2}% (target: within +/-{pct}%)");
    if std::env::var_os("MICROBENCH_ENFORCE").is_some_and(|v| v == "1") {
        assert!(
            delta.abs() <= pct,
            "{label}: {delta:+.2}% exceeds the +/-{pct}% envelope"
        );
    }
}

fn bench_end_to_end(runner: &Runner) {
    let n = runner.size(20_000, 2_000);
    println!("clustering_{}k_8d", n / 1000);
    let ds = random_walk_clusters(&RandomWalkConfig::paper_default(n, 8), 42);
    let points = &ds.points;
    let (eps, min_pts) = (5000.0, 100);

    runner.bench("dbsvec", || {
        Dbsvec::new(DbsvecConfig::new(eps, min_pts))
            .fit(black_box(points))
            .num_clusters()
    });
    runner.bench("dbsvec_min", || {
        Dbsvec::new(DbsvecConfig::new(eps, min_pts).minimal_nu())
            .fit(black_box(points))
            .num_clusters()
    });
    runner.bench("r_dbscan", || {
        Dbscan::new(eps, min_pts)
            .fit(black_box(points))
            .clustering
            .num_clusters()
    });
    runner.bench("kd_dbscan", || {
        let index = KdTree::build(points);
        Dbscan::new(eps, min_pts)
            .fit_with_index(black_box(points), &index)
            .clustering
            .num_clusters()
    });
    runner.bench("rho_approx", || {
        RhoApproxDbscan::new(eps, min_pts, 0.001)
            .fit(black_box(points))
            .clustering
            .num_clusters()
    });
    runner.bench("nq_dbscan", || {
        NqDbscan::new(eps, min_pts)
            .fit(black_box(points))
            .clustering
            .num_clusters()
    });
    runner.bench("dbscan_lsh", || {
        DbscanLsh::new(eps, min_pts, 42)
            .fit(black_box(points))
            .clustering
            .num_clusters()
    });
    runner.bench("kmeans", || {
        KMeans::new(10, 42)
            .fit(black_box(points))
            .clustering
            .num_clusters()
    });
    runner.bench("fdbscan", || {
        FDbscan::new(eps, min_pts)
            .fit(black_box(points))
            .clustering
            .num_clusters()
    });
    runner.bench("parallel_dbscan", || {
        ParallelDbscan::new(eps, min_pts, 0)
            .fit(black_box(points))
            .clustering
            .num_clusters()
    });

    // HDBSCAN's O(n^2) MST dominates; bench it at a smaller n.
    let small_n = runner.size(5_000, 1_000);
    let small = random_walk_clusters(&RandomWalkConfig::paper_default(small_n, 8), 42);
    println!("hdbscan_{}k_8d", small_n / 1000);
    runner.bench("hdbscan", || {
        Hdbscan::new(5, 50)
            .fit(black_box(&small.points))
            .clustering
            .num_clusters()
    });
}

/// The acceptance check for the observer seam: the NoopObserver path must
/// cost the same as the plain path (empty callbacks inline to nothing).
fn bench_noop_observer_overhead(runner: &Runner) {
    let n = runner.size(20_000, 2_000);
    println!("noop_observer_overhead_{}k_8d", n / 1000);
    let ds = random_walk_clusters(&RandomWalkConfig::paper_default(n, 8), 42);
    let points = &ds.points;
    let (eps, min_pts) = (5000.0, 100);

    let (plain, observed) = runner.bench_pair(
        "dbsvec_fit",
        "dbsvec_fit_observed_noop",
        || {
            Dbsvec::new(DbsvecConfig::new(eps, min_pts))
                .fit(black_box(points))
                .num_clusters()
        },
        || {
            Dbsvec::new(DbsvecConfig::new(eps, min_pts))
                .fit_observed(black_box(points), &mut NoopObserver)
                .num_clusters()
        },
    );
    check_envelope("noop observer overhead", plain, observed, 2.0);
}

/// The serving counterpart: with telemetry disabled (no `EngineMetrics`
/// in play), assignment through the stats + observer seam must cost the
/// same as a bare `classify` loop — the seam's noop events and counter
/// bumps have to inline away. Guards the metered-method refactor against
/// creeping into the default path.
fn bench_serve_telemetry_overhead(runner: &Runner) {
    let n = runner.size(20_000, 2_000);
    println!("serve_telemetry_overhead_{}k_8d", n / 1000);
    let ds = random_walk_clusters(&RandomWalkConfig::paper_default(n, 8), 42);
    let points = &ds.points;
    let (eps, min_pts) = (5000.0, 100);

    let fit = Dbsvec::new(DbsvecConfig::new(eps, min_pts)).fit(points);
    let artifact =
        ModelArtifact::from_fit(points, fit.labels(), fit.core_points(), eps, min_pts as u32)
            .expect("fit produces a valid artifact");
    let engine = std::cell::RefCell::new(Engine::new(&artifact));

    let (plain, observed) = runner.bench_pair(
        "engine_classify_loop",
        "engine_assign_batch_noop_observed",
        || {
            let e = engine.borrow();
            let queries = black_box(points);
            (0..queries.len())
                .map(|i| e.classify(queries.point(i as u32)))
                .filter(|a| a.cluster().is_some())
                .count()
        },
        || {
            engine
                .borrow_mut()
                .assign_batch_observed(black_box(points), 1, &mut NoopObserver)
                .len()
        },
    );
    check_envelope("disabled-telemetry serve overhead", plain, observed, 2.0);
}

/// The quality-monitor counterpart of the telemetry check: folding every
/// assignment into a quality monitor (histogram bump, occupancy counter,
/// amortized per-window drift math) must stay inside the same ±2%
/// envelope as the other observability seams — monitoring is meant to be
/// always-on-able in serving. The ingest seam is checked on real mixed
/// traffic (promotions, borders, buffered points): each sample rebuilds
/// the engine from the artifact so every run ingests the identical
/// stream into identical state, and the rebuild cost lands on both sides
/// of the comparison equally.
fn bench_monitor_overhead(runner: &Runner) {
    let n = runner.size(20_000, 2_000);
    println!("monitor_overhead_{}k_8d", n / 1000);
    let ds = random_walk_clusters(&RandomWalkConfig::paper_default(n, 8), 42);
    let points = &ds.points;
    let (eps, min_pts) = (5000.0, 100);

    let fit = Dbsvec::new(DbsvecConfig::new(eps, min_pts)).fit(points);
    let artifact =
        ModelArtifact::from_fit(points, fit.labels(), fit.core_points(), eps, min_pts as u32)
            .expect("fit produces a valid artifact")
            .with_quality(points, fit.labels());
    let engine = std::cell::RefCell::new(Engine::new(&artifact));

    let (plain, monitored) = runner.bench_pair(
        "engine_assign_loop",
        "engine_assign_monitored_loop",
        || {
            let mut e = engine.borrow_mut();
            let queries = black_box(points);
            (0..queries.len())
                .filter(|&i| e.assign(queries.point(i as u32)).cluster().is_some())
                .count()
        },
        || {
            let mut e = engine.borrow_mut();
            let mut monitor = e.monitor(MonitorConfig::new());
            let queries = black_box(points);
            (0..queries.len())
                .filter(|&i| {
                    e.assign_monitored(queries.point(i as u32), &mut monitor, &mut NoopObserver)
                        .cluster()
                        .is_some()
                })
                .count()
        },
    );
    check_envelope("monitored assign overhead", plain, monitored, 2.0);

    // Fresh arrivals: sub-eps jitter keeps the stream near the fitted
    // density so ingests exercise the full promote/border/buffer mix.
    let mut rng = SplitMix64::new(0x1a9e57);
    let mut stream = dbsvec_geometry::PointSet::new(8);
    let mut buf = [0.0f64; 8];
    for i in 0..points.len() {
        let p = points.point(i as u32);
        for (d, v) in buf.iter_mut().enumerate() {
            *v = p[d] + (rng.next_f64() - 0.5) * eps;
        }
        stream.push(&buf);
    }
    let (plain_ingest, monitored_ingest) = runner.bench_pair(
        "engine_ingest_stream",
        "engine_ingest_monitored_stream",
        || {
            let mut e = Engine::new(black_box(&artifact));
            (0..stream.len())
                .map(|i| e.ingest_observed(stream.point(i as u32), &mut NoopObserver))
                .count()
        },
        || {
            let mut e = Engine::new(black_box(&artifact));
            let mut monitor = e.monitor(MonitorConfig::new());
            (0..stream.len())
                .map(|i| {
                    e.ingest_monitored(stream.point(i as u32), &mut monitor, &mut NoopObserver)
                })
                .count()
        },
    );
    check_envelope(
        "monitored ingest overhead",
        plain_ingest,
        monitored_ingest,
        2.0,
    );
}

/// Ablation bench: the design choices DESIGN.md calls out.
fn bench_ablations(runner: &Runner) {
    let n = runner.size(10_000, 2_000);
    println!("dbsvec_ablations_{}k_8d", n / 1000);
    let ds = random_walk_clusters(&RandomWalkConfig::paper_default(n, 8), 7);
    let points = &ds.points;
    let (eps, min_pts) = (5000.0, 100);

    runner.bench("full", || {
        Dbsvec::new(DbsvecConfig::new(eps, min_pts))
            .fit(black_box(points))
            .num_clusters()
    });
    runner.bench("no_weights", || {
        Dbsvec::new(DbsvecConfig::new(eps, min_pts).without_weights())
            .fit(black_box(points))
            .num_clusters()
    });
    runner.bench("no_incremental", || {
        Dbsvec::new(DbsvecConfig::new(eps, min_pts).without_incremental_learning())
            .fit(black_box(points))
            .num_clusters()
    });
    runner.bench("random_kernel", || {
        Dbsvec::new(DbsvecConfig::new(eps, min_pts).with_random_kernel_width(3))
            .fit(black_box(points))
            .num_clusters()
    });
    // Ablation of *our* substitution: literal Eq. 5 weights (O(ñ²)) vs the
    // default O(ñ) centroid proxy.
    runner.bench("exact_kernel_weights", || {
        Dbsvec::new(DbsvecConfig::new(eps, min_pts).with_exact_kernel_weights())
            .fit(black_box(points))
            .num_clusters()
    });
}
