//! Microbenchmark: the SMO solver and its supporting pieces.
//!
//! Validates the §IV-D cost claims: training time should grow roughly
//! linearly in the target size ñ when ν (and hence the active set) is
//! small, and the O(ñ) weight proxy should beat the exact O(ñ²) Eq. 5
//! kernel distance by a widening margin.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use dbsvec_datasets::gaussian_mixture;
use dbsvec_geometry::{PointId, PointSet};
use dbsvec_svdd::{
    centroid_distances, kernel_distances, kernel_width_center_radius, penalty_weights,
    GaussianKernel, SvddProblem, WeightOptions,
};

fn target(n: usize) -> (PointSet, Vec<PointId>) {
    let ds = gaussian_mixture(n, 8, 1, 1000.0, 1e5, 7);
    (ds.points, (0..n as u32).collect())
}

fn bench_smo(c: &mut Criterion) {
    let mut group = c.benchmark_group("smo_solve");
    group.sample_size(10);
    for &n in &[200usize, 800, 3200] {
        let (points, ids) = target(n);
        let sigma = kernel_width_center_radius(&points, &ids);
        let kernel = GaussianKernel::from_width(sigma);
        group.bench_with_input(BenchmarkId::new("nu_small", n), &n, |b, _| {
            b.iter(|| {
                SvddProblem::new(black_box(&points), &ids, kernel)
                    .with_nu(0.05)
                    .solve()
                    .num_support_vectors()
            })
        });
        group.bench_with_input(BenchmarkId::new("nu_large", n), &n, |b, _| {
            b.iter(|| {
                SvddProblem::new(black_box(&points), &ids, kernel)
                    .with_nu(0.5)
                    .solve()
                    .num_support_vectors()
            })
        });
    }
    group.finish();
}

fn bench_weights(c: &mut Criterion) {
    let mut group = c.benchmark_group("penalty_weights");
    group.sample_size(10);
    for &n in &[500usize, 2000] {
        let (points, ids) = target(n);
        let kernel = GaussianKernel::from_width(kernel_width_center_radius(&points, &ids));
        let counts = vec![0u32; n];
        group.bench_with_input(BenchmarkId::new("proxy_linear", n), &n, |b, _| {
            b.iter(|| {
                penalty_weights(
                    black_box(&points),
                    &ids,
                    &counts,
                    kernel,
                    1.0,
                    WeightOptions::default(),
                )
                .len()
            })
        });
        group.bench_with_input(BenchmarkId::new("exact_quadratic", n), &n, |b, _| {
            let opts = WeightOptions {
                exact_kernel_distance: true,
                ..Default::default()
            };
            b.iter(|| penalty_weights(black_box(&points), &ids, &counts, kernel, 1.0, opts).len())
        });
    }
    group.finish();
}

fn bench_kernel_distance(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_distance");
    group.sample_size(10);
    let (points, ids) = target(1000);
    let kernel = GaussianKernel::from_width(kernel_width_center_radius(&points, &ids));
    group.bench_function("exact_eq5", |b| {
        b.iter(|| kernel_distances(black_box(&points), &ids, kernel).len())
    });
    group.bench_function("centroid_proxy", |b| {
        b.iter(|| centroid_distances(black_box(&points), &ids).len())
    });
    group.finish();
}

criterion_group!(benches, bench_smo, bench_weights, bench_kernel_distance);
criterion_main!(benches);
