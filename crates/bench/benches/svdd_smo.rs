//! Microbenchmark: the SMO solver and its supporting pieces.
//!
//! Validates the §IV-D cost claims: training time should grow roughly
//! linearly in the target size ñ when ν (and hence the active set) is
//! small, and the O(ñ) weight proxy should beat the exact O(ñ²) Eq. 5
//! kernel distance by a widening margin.

use dbsvec_bench::micro::{black_box, Runner};
use dbsvec_datasets::gaussian_mixture;
use dbsvec_geometry::{PointId, PointSet};
use dbsvec_svdd::{
    centroid_distances, kernel_distances, kernel_width_center_radius, penalty_weights,
    GaussianKernel, SvddProblem, WeightOptions,
};

fn main() {
    let runner = Runner::from_env("svdd_smo");
    bench_smo(&runner);
    bench_weights(&runner);
    bench_kernel_distance(&runner);
}

fn target(n: usize) -> (PointSet, Vec<PointId>) {
    let ds = gaussian_mixture(n, 8, 1, 1000.0, 1e5, 7);
    (ds.points, (0..n as u32).collect())
}

fn bench_smo(runner: &Runner) {
    println!("smo_solve");
    let sizes = if runner.is_quick() {
        vec![200usize]
    } else {
        vec![200usize, 800, 3200]
    };
    for &n in &sizes {
        let (points, ids) = target(n);
        let sigma = kernel_width_center_radius(&points, &ids);
        let kernel = GaussianKernel::from_width(sigma);
        runner.bench(&format!("nu_small/{n}"), || {
            SvddProblem::new(black_box(&points), &ids, kernel)
                .with_nu(0.05)
                .solve()
                .num_support_vectors()
        });
        runner.bench(&format!("nu_large/{n}"), || {
            SvddProblem::new(black_box(&points), &ids, kernel)
                .with_nu(0.5)
                .solve()
                .num_support_vectors()
        });
    }
}

fn bench_weights(runner: &Runner) {
    println!("penalty_weights");
    let sizes = if runner.is_quick() {
        vec![500usize]
    } else {
        vec![500usize, 2000]
    };
    for &n in &sizes {
        let (points, ids) = target(n);
        let kernel = GaussianKernel::from_width(kernel_width_center_radius(&points, &ids));
        let counts = vec![0u32; n];
        runner.bench(&format!("proxy_linear/{n}"), || {
            penalty_weights(
                black_box(&points),
                &ids,
                &counts,
                kernel,
                1.0,
                WeightOptions::default(),
            )
            .len()
        });
        let opts = WeightOptions {
            exact_kernel_distance: true,
            ..Default::default()
        };
        runner.bench(&format!("exact_quadratic/{n}"), || {
            penalty_weights(black_box(&points), &ids, &counts, kernel, 1.0, opts).len()
        });
    }
}

fn bench_kernel_distance(runner: &Runner) {
    let n = runner.size(1000, 300);
    println!("kernel_distance (n={n})");
    let (points, ids) = target(n);
    let kernel = GaussianKernel::from_width(kernel_width_center_radius(&points, &ids));
    runner.bench("exact_eq5", || {
        kernel_distances(black_box(&points), &ids, kernel).len()
    });
    runner.bench("centroid_proxy", || {
        centroid_distances(black_box(&points), &ids).len()
    });
}
