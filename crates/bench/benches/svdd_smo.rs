//! Microbenchmark: the SMO solver and its supporting pieces.
//!
//! Validates the §IV-D cost claims: training time should grow roughly
//! linearly in the target size ñ when ν (and hence the active set) is
//! small, and the O(ñ) weight proxy should beat the exact O(ñ²) Eq. 5
//! kernel distance by a widening margin.

use dbsvec_bench::micro::{black_box, Runner};
use dbsvec_datasets::gaussian_mixture;
use dbsvec_geometry::{PointId, PointSet};
use dbsvec_svdd::{
    centroid_distances, kernel_distances, kernel_width_center_radius, penalty_weights,
    GaussianKernel, SmoOptions, SolverSession, SvddProblem, WeightOptions,
};

fn main() {
    let runner = Runner::from_env("svdd_smo");
    bench_smo(&runner);
    bench_warm_vs_cold(&runner);
    bench_weights(&runner);
    bench_kernel_distance(&runner);
}

fn target(n: usize) -> (PointSet, Vec<PointId>) {
    let ds = gaussian_mixture(n, 8, 1, 1000.0, 1e5, 7);
    (ds.points, (0..n as u32).collect())
}

fn bench_smo(runner: &Runner) {
    println!("smo_solve");
    let sizes = if runner.is_quick() {
        vec![200usize]
    } else {
        vec![200usize, 800, 3200]
    };
    for &n in &sizes {
        let (points, ids) = target(n);
        let sigma = kernel_width_center_radius(&points, &ids);
        let kernel = GaussianKernel::from_width(sigma);
        runner.bench(&format!("nu_small/{n}"), || {
            SvddProblem::new(black_box(&points), &ids, kernel)
                .with_nu(0.05)
                .solve()
                .num_support_vectors()
        });
        runner.bench(&format!("nu_large/{n}"), || {
            SvddProblem::new(black_box(&points), &ids, kernel)
                .with_nu(0.5)
                .solve()
                .num_support_vectors()
        });
    }
}

/// Expansion-shaped solve sequence: three rounds over a growing prefix of
/// one blob, σ re-resolved per round, sharing one [`SolverSession`] — the
/// exact access pattern `sv_expand_cluster` drives. Warm start must not
/// cost iterations versus a cold fill of the same rounds; under
/// `MICROBENCH_ENFORCE=1` that envelope is asserted, not just printed.
fn bench_warm_vs_cold(runner: &Runner) {
    println!("smo_warm_vs_cold");
    let n = runner.size(2400, 600);
    let (points, ids) = target(n);
    let rounds = [n / 2, (3 * n) / 4, n];
    let run = |options: SmoOptions| -> usize {
        let mut session = SolverSession::new();
        let mut iters = 0usize;
        for &end in &rounds {
            let ids = &ids[..end];
            let sigma = kernel_width_center_radius(&points, ids);
            let model =
                SvddProblem::new(black_box(&points), ids, GaussianKernel::from_width(sigma))
                    .with_nu(0.1)
                    .with_options(options)
                    .with_session(&mut session)
                    .solve();
            assert!(model.converged(), "round at n={end} must converge");
            iters += model.iterations();
        }
        iters
    };
    let warm_opts = SmoOptions::default();
    let cold_opts = SmoOptions {
        warm_start: false,
        shrinking: false,
        ..SmoOptions::default()
    };
    let (warm_iters, cold_iters) = (run(warm_opts), run(cold_opts));
    let saved = 100.0 * (cold_iters as f64 - warm_iters as f64) / cold_iters as f64;
    println!("  iterations: warm={warm_iters} cold={cold_iters} ({saved:+.1}% saved)");
    if std::env::var_os("MICROBENCH_ENFORCE").is_some_and(|v| v == "1") {
        assert!(
            warm_iters <= cold_iters,
            "warm start must not cost iterations: warm={warm_iters} cold={cold_iters}"
        );
    }
    runner.bench("warm/3_rounds", || run(warm_opts));
    runner.bench("cold/3_rounds", || run(cold_opts));
}

fn bench_weights(runner: &Runner) {
    println!("penalty_weights");
    let sizes = if runner.is_quick() {
        vec![500usize]
    } else {
        vec![500usize, 2000]
    };
    for &n in &sizes {
        let (points, ids) = target(n);
        let kernel = GaussianKernel::from_width(kernel_width_center_radius(&points, &ids));
        let counts = vec![0u32; n];
        runner.bench(&format!("proxy_linear/{n}"), || {
            penalty_weights(
                black_box(&points),
                &ids,
                &counts,
                kernel,
                1.0,
                WeightOptions::default(),
            )
            .len()
        });
        let opts = WeightOptions {
            exact_kernel_distance: true,
            ..Default::default()
        };
        runner.bench(&format!("exact_quadratic/{n}"), || {
            penalty_weights(black_box(&points), &ids, &counts, kernel, 1.0, opts).len()
        });
    }
}

fn bench_kernel_distance(runner: &Runner) {
    let n = runner.size(1000, 300);
    println!("kernel_distance (n={n})");
    let (points, ids) = target(n);
    let kernel = GaussianKernel::from_width(kernel_width_center_radius(&points, &ids));
    runner.bench("exact_eq5", || {
        kernel_distances(black_box(&points), &ids, kernel).len()
    });
    runner.bench("centroid_proxy", || {
        centroid_distances(black_box(&points), &ids).len()
    });
}
