//! One entry point per algorithm under evaluation.

use dbsvec_baselines::{Dbscan, DbscanLsh, KMeans, NqDbscan, RhoApproxDbscan};
use dbsvec_core::{Clustering, Dbsvec, DbsvecConfig};
use dbsvec_geometry::PointSet;
use dbsvec_index::KdTree;
use dbsvec_obs::{NoopObserver, Observer, Phase, PhaseTimings, RecordingObserver, ReplayCounts};

use crate::harness::time;

/// The algorithms the paper's experiments compare (§V-A).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Algorithm {
    /// DBSVEC with the adaptive ν* (the paper's "DBSVEC").
    Dbsvec,
    /// DBSVEC with ν = 1/ñ (the paper's "DBSVEC_min").
    DbsvecMin,
    /// DBSVEC with a fixed ν (the Fig. 8 sweep).
    DbsvecFixedNu(f64),
    /// DBSVEC without adaptive penalty weights (Fig. 9 "DBSVEC\WF").
    DbsvecNoWeights,
    /// DBSVEC without incremental learning (Fig. 9 "DBSVEC\IL").
    DbsvecNoIncremental,
    /// DBSVEC with random kernel widths (Fig. 9 "DBSVEC\OK").
    DbsvecRandomKernel,
    /// Exact DBSCAN over an R\*-tree ("R-DBSCAN", the ground truth).
    RDbscan,
    /// Exact DBSCAN over a kd-tree ("kd-DBSCAN").
    KdDbscan,
    /// ρ-approximate DBSCAN with ρ = 0.001 (paper default).
    RhoApprox,
    /// Hashing-based approximate DBSCAN.
    DbscanLsh,
    /// NQ-DBSCAN.
    NqDbscan,
    /// k-means with the given k.
    KMeans(usize),
}

impl Algorithm {
    /// Display name as used in the paper's figures.
    pub fn name(&self) -> String {
        match self {
            Algorithm::Dbsvec => "DBSVEC".to_string(),
            Algorithm::DbsvecMin => "DBSVEC_min".to_string(),
            Algorithm::DbsvecFixedNu(nu) => format!("DBSVEC(nu={nu})"),
            Algorithm::DbsvecNoWeights => "DBSVEC\\WF".to_string(),
            Algorithm::DbsvecNoIncremental => "DBSVEC\\IL".to_string(),
            Algorithm::DbsvecRandomKernel => "DBSVEC\\OK".to_string(),
            Algorithm::RDbscan => "R-DBSCAN".to_string(),
            Algorithm::KdDbscan => "kd-DBSCAN".to_string(),
            Algorithm::RhoApprox => "rho-Appr".to_string(),
            Algorithm::DbscanLsh => "DBSCAN-LSH".to_string(),
            Algorithm::NqDbscan => "NQ-DBSCAN".to_string(),
            Algorithm::KMeans(_) => "k-MEANS".to_string(),
        }
    }

    /// The comparison set of the efficiency figures (Fig. 6–7).
    pub fn efficiency_suite(k_for_kmeans: usize) -> Vec<Algorithm> {
        vec![
            Algorithm::RDbscan,
            Algorithm::KdDbscan,
            Algorithm::RhoApprox,
            Algorithm::DbscanLsh,
            Algorithm::NqDbscan,
            Algorithm::KMeans(k_for_kmeans),
            Algorithm::Dbsvec,
        ]
    }

    /// Whether this algorithm emits observer spans/events, i.e. whether a
    /// profiled run yields phase timings and a comparable θ.
    pub fn is_instrumented(&self) -> bool {
        !matches!(
            self,
            Algorithm::RhoApprox | Algorithm::DbscanLsh | Algorithm::KMeans(_)
        )
    }
}

/// Outcome of one timed run.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// Which algorithm ran.
    pub algorithm: Algorithm,
    /// The labels it produced.
    pub clustering: Clustering,
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Per-phase wall-clock breakdown, in [`Phase::ALL`] order. Empty
    /// unless the run was profiled ([`run_algorithm_profiled`]) and the
    /// algorithm [is instrumented](Algorithm::is_instrumented).
    pub phases: Vec<(Phase, PhaseTimings)>,
    /// Event counters replayed from the observer stream (range queries,
    /// SVDD trainings, …). All-zero unless the run was profiled.
    pub counts: ReplayCounts,
}

impl RunOutcome {
    /// θ = range queries / n from the replayed counters, if profiled.
    pub fn theta(&self) -> Option<f64> {
        if self.counts.range_queries > 0 {
            Some(self.counts.theta(self.clustering.len()))
        } else {
            None
        }
    }
}

/// The single dispatch point: runs `algorithm` once, reporting spans and
/// events to `obs` where the implementation is instrumented.
fn fit_once(
    algorithm: Algorithm,
    points: &PointSet,
    eps: f64,
    min_pts: usize,
    seed: u64,
    obs: &mut dyn Observer,
) -> Clustering {
    match algorithm {
        Algorithm::Dbsvec => Dbsvec::new(DbsvecConfig::new(eps, min_pts))
            .fit_observed(points, obs)
            .into_labels(),
        Algorithm::DbsvecMin => Dbsvec::new(DbsvecConfig::new(eps, min_pts).minimal_nu())
            .fit_observed(points, obs)
            .into_labels(),
        Algorithm::DbsvecFixedNu(nu) => Dbsvec::new(DbsvecConfig::new(eps, min_pts).with_nu(nu))
            .fit_observed(points, obs)
            .into_labels(),
        Algorithm::DbsvecNoWeights => {
            Dbsvec::new(DbsvecConfig::new(eps, min_pts).without_weights())
                .fit_observed(points, obs)
                .into_labels()
        }
        Algorithm::DbsvecNoIncremental => {
            Dbsvec::new(DbsvecConfig::new(eps, min_pts).without_incremental_learning())
                .fit_observed(points, obs)
                .into_labels()
        }
        Algorithm::DbsvecRandomKernel => {
            Dbsvec::new(DbsvecConfig::new(eps, min_pts).with_random_kernel_width(seed))
                .fit_observed(points, obs)
                .into_labels()
        }
        Algorithm::RDbscan => {
            Dbscan::new(eps, min_pts)
                .fit_observed(points, obs)
                .clustering
        }
        Algorithm::KdDbscan => {
            let index = KdTree::build(points);
            Dbscan::new(eps, min_pts)
                .fit_with_index_observed(points, &index, obs)
                .clustering
        }
        Algorithm::RhoApprox => {
            RhoApproxDbscan::new(eps, min_pts, 0.001)
                .fit(points)
                .clustering
        }
        Algorithm::DbscanLsh => DbscanLsh::new(eps, min_pts, seed).fit(points).clustering,
        Algorithm::NqDbscan => {
            NqDbscan::new(eps, min_pts)
                .fit_observed(points, obs)
                .clustering
        }
        Algorithm::KMeans(k) => KMeans::new(k, seed).fit(points).clustering,
    }
}

/// Runs one algorithm on `points` with the given DBSCAN-style parameters,
/// deterministically from `seed` (only the randomized algorithms use it).
pub fn run_algorithm(
    algorithm: Algorithm,
    points: &PointSet,
    eps: f64,
    min_pts: usize,
    seed: u64,
) -> RunOutcome {
    run_algorithm_observed(algorithm, points, eps, min_pts, seed, &mut NoopObserver)
}

/// Like [`run_algorithm`] but reports to a caller-supplied observer.
/// `phases`/`counts` in the outcome stay empty — the caller owns the
/// observer and can fold the stream however it likes.
pub fn run_algorithm_observed(
    algorithm: Algorithm,
    points: &PointSet,
    eps: f64,
    min_pts: usize,
    seed: u64,
    obs: &mut dyn Observer,
) -> RunOutcome {
    let (clustering, seconds) = time(|| fit_once(algorithm, points, eps, min_pts, seed, obs));
    RunOutcome {
        algorithm,
        clustering,
        seconds,
        phases: Vec::new(),
        counts: ReplayCounts::default(),
    }
}

/// Runs with a [`RecordingObserver`] attached and folds its stream into
/// the outcome: per-phase timings plus replayed event counters. For
/// uninstrumented algorithms this costs nothing and the extras stay empty.
pub fn run_algorithm_profiled(
    algorithm: Algorithm,
    points: &PointSet,
    eps: f64,
    min_pts: usize,
    seed: u64,
) -> RunOutcome {
    let mut recorder = RecordingObserver::new();
    let mut outcome = run_algorithm_observed(algorithm, points, eps, min_pts, seed, &mut recorder);
    outcome.phases = recorder.phase_timings();
    outcome.counts = recorder.replay();
    outcome
}

/// Profiled DBSVEC run with an explicit fit thread budget (`0` = all
/// cores, `1` = the sequential path), for the parallel-fit scalability
/// sweep. Labels, counts, and the event stream are identical at every
/// thread count; only the phase wall-clocks move.
pub fn run_dbsvec_threads_profiled(
    points: &PointSet,
    eps: f64,
    min_pts: usize,
    threads: usize,
) -> RunOutcome {
    let mut recorder = RecordingObserver::new();
    let (clustering, seconds) = time(|| {
        Dbsvec::new(DbsvecConfig::new(eps, min_pts).with_threads(threads))
            .fit_observed(points, &mut recorder)
            .into_labels()
    });
    RunOutcome {
        algorithm: Algorithm::Dbsvec,
        clustering,
        seconds,
        phases: recorder.phase_timings(),
        counts: recorder.replay(),
    }
}

/// Profiled DBSVEC run under an explicit configuration, for ablation-style
/// sweeps that toggle solver knobs (warm-start, shrinking) rather than
/// thread counts. Phase timings and replayed counters are folded into the
/// outcome exactly as in [`run_algorithm_profiled`].
pub fn run_dbsvec_config_profiled(points: &PointSet, config: DbsvecConfig) -> RunOutcome {
    let mut recorder = RecordingObserver::new();
    let (clustering, seconds) = time(|| {
        Dbsvec::new(config)
            .fit_observed(points, &mut recorder)
            .into_labels()
    });
    RunOutcome {
        algorithm: Algorithm::Dbsvec,
        clustering,
        seconds,
        phases: recorder.phase_timings(),
        counts: recorder.replay(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbsvec_geometry::rng::SplitMix64;

    fn blobs() -> PointSet {
        let mut rng = SplitMix64::new(1);
        let mut ps = PointSet::new(2);
        for c in [[0.0, 0.0], [60.0, 0.0]] {
            for _ in 0..60 {
                ps.push(&[c[0] + rng.next_f64() * 4.0, c[1] + rng.next_f64() * 4.0]);
            }
        }
        ps
    }

    #[test]
    fn every_algorithm_runs_and_labels_every_point() {
        let ps = blobs();
        let mut suite = Algorithm::efficiency_suite(2);
        suite.extend([
            Algorithm::DbsvecMin,
            Algorithm::DbsvecNoWeights,
            Algorithm::DbsvecNoIncremental,
            Algorithm::DbsvecRandomKernel,
            Algorithm::DbsvecFixedNu(0.5),
        ]);
        for algo in suite {
            let out = run_algorithm(algo, &ps, 2.0, 4, 7);
            assert_eq!(out.clustering.len(), ps.len(), "{}", algo.name());
            assert!(
                out.clustering.num_clusters() >= 2,
                "{} found {} clusters",
                algo.name(),
                out.clustering.num_clusters()
            );
            assert!(out.seconds >= 0.0);
        }
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Algorithm::Dbsvec.name(), "DBSVEC");
        assert_eq!(Algorithm::RhoApprox.name(), "rho-Appr");
        assert_eq!(Algorithm::KMeans(5).name(), "k-MEANS");
        assert_eq!(Algorithm::DbsvecNoWeights.name(), "DBSVEC\\WF");
    }

    #[test]
    fn profiled_run_folds_phase_timings_and_counters() {
        let ps = blobs();
        let out = run_algorithm_profiled(Algorithm::Dbsvec, &ps, 2.0, 4, 7);
        assert!(!out.phases.is_empty());
        assert!(out.counts.range_queries > 0);
        assert!(out.counts.seeds > 0);
        let theta = out.theta().expect("instrumented run has a theta");
        assert!(theta > 0.0);
        // Phase totals are sane: the init span covers the whole scan.
        let init = out
            .phases
            .iter()
            .find(|(p, _)| *p == Phase::Init)
            .expect("init phase recorded");
        assert!(init.1.spans >= 1);

        // Uninstrumented algorithms profile to an empty stream.
        let kmeans = run_algorithm_profiled(Algorithm::KMeans(2), &ps, 2.0, 4, 7);
        assert!(kmeans.phases.is_empty());
        assert_eq!(kmeans.counts, ReplayCounts::default());
        assert!(kmeans.theta().is_none());
        assert!(!Algorithm::KMeans(2).is_instrumented());
        assert!(Algorithm::Dbsvec.is_instrumented());
    }

    #[test]
    fn threaded_profiled_run_matches_sequential() {
        let ps = blobs();
        let baseline = run_dbsvec_threads_profiled(&ps, 2.0, 4, 1);
        for threads in [2usize, 4] {
            let par = run_dbsvec_threads_profiled(&ps, 2.0, 4, threads);
            assert_eq!(baseline.clustering, par.clustering, "threads={threads}");
            assert_eq!(baseline.counts, par.counts, "threads={threads}");
            assert!(!par.phases.is_empty());
        }
    }

    #[test]
    fn config_profiled_run_compares_warm_and_cold_solvers() {
        let ps = blobs();
        let warm = run_dbsvec_config_profiled(&ps, DbsvecConfig::new(2.0, 4));
        let cold = run_dbsvec_config_profiled(&ps, DbsvecConfig::new(2.0, 4).cold_start());
        assert_eq!(warm.clustering, cold.clustering);
        assert_eq!(cold.counts.warm_started_trainings, 0);
        assert!(warm.counts.smo_iterations <= cold.counts.smo_iterations);
        assert!(!warm.phases.is_empty());
    }

    #[test]
    fn efficiency_suite_matches_figure_six() {
        let suite = Algorithm::efficiency_suite(10);
        assert_eq!(suite.len(), 7);
        assert!(suite.contains(&Algorithm::Dbsvec));
        assert!(suite.contains(&Algorithm::RDbscan));
    }
}
