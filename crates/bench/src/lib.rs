//! Benchmark harness reproducing every table and figure of the DBSVEC
//! paper's evaluation (§V).
//!
//! Each binary in `src/bin/` regenerates one experiment and prints rows
//! directly comparable with the paper:
//!
//! | binary | paper artifact |
//! |---|---|
//! | `fig1_visual` | Fig. 1 — DBSCAN vs DBSVEC on t4.8k (+ per-point CSV) |
//! | `table2_complexity` | Table II — empirical θ decomposition |
//! | `table3_accuracy` | Table III — recall over the 11 open datasets |
//! | `table4_validation` | Table IV — compactness/separation vs k-means |
//! | `fig6_scalability` | Fig. 6 — runtime vs n / d / real-world datasets |
//! | `fig7_radius` | Fig. 7 — runtime vs ε |
//! | `fig8_penalty` | Fig. 8 — runtime vs ν |
//! | `fig9_ablation` | Fig. 9 — SVDD improvement ablations |
//!
//! Absolute timings will differ from the paper's C++/libsvm testbed; the
//! *shape* (who wins, growth trends, crossovers) is the reproduction
//! target. `EXPERIMENTS.md` records both. All binaries accept `--scale`
//! to shrink or grow the workloads and `--budget-secs` to skip algorithms
//! once a sweep's time budget is spent.

pub mod harness;
pub mod micro;
pub mod runners;

pub use harness::{parse_args, BenchArgs, JsonReport, Stopwatch};
pub use runners::{
    run_algorithm, run_algorithm_observed, run_algorithm_profiled, run_dbsvec_config_profiled,
    run_dbsvec_threads_profiled, Algorithm, RunOutcome,
};
