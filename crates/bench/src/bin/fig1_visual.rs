//! Fig. 1 — clustering quality of DBSVEC vs DBSCAN on t4.8k.
//!
//! Reproduces the paper's headline visual: both algorithms cluster the
//! t4.8k shape benchmark (MinPts = 20 in the paper; the stand-in uses its
//! density-derived parameters) and produce the same clusters, with DBSVEC
//! several times faster (7.7× in the paper). Per-point labels are written
//! to `results/fig1_{dbscan,dbsvec}.csv` for plotting.

use std::path::Path;

use dbsvec_bench::{parse_args, run_algorithm, Algorithm};
use dbsvec_datasets::io::write_csv;
use dbsvec_datasets::plot::write_svg_scatter;
use dbsvec_datasets::OpenDataset;
use dbsvec_metrics::{adjusted_rand_index, recall};

fn main() {
    let args = parse_args();
    let standin = OpenDataset::T48k.generate(args.seed);
    let points = &standin.dataset.points;
    // 3x the density-derived radius: still the same six clusters (verified
    // by the recall below), but at the upper end of the valid eps range,
    // which is the regime the paper runs in (its Fig. 7 shows DBSVEC's
    // advantage growing with eps while DBSCAN's cost grows).
    let eps = standin.suggested.eps * 3.0;
    let min_pts = standin.suggested.min_pts;

    println!(
        "Fig. 1: DBSVEC vs DBSCAN on t4.8k (n={}, d=2)",
        points.len()
    );
    println!("parameters: eps={eps:.1} MinPts={min_pts} (paper: eps=8.5 MinPts=20 on raw canvas)");
    println!();

    let dbscan = run_algorithm(Algorithm::RDbscan, points, eps, min_pts, args.seed);
    let dbsvec = run_algorithm(Algorithm::Dbsvec, points, eps, min_pts, args.seed);

    // Query accounting (stats come from a dedicated run; the timing above
    // is untouched).
    let detail = dbsvec_core::Dbsvec::new(dbsvec_core::DbsvecConfig::new(eps, min_pts)).fit(points);
    println!(
        "DBSVEC cost: {} range queries (DBSCAN: {}), {} SVDD trainings, {} SMO iterations",
        detail.stats().range_queries,
        points.len(),
        detail.stats().svdd_trainings,
        detail.stats().smo_iterations,
    );
    println!();

    let r = recall(
        dbscan.clustering.assignments(),
        dbsvec.clustering.assignments(),
    );
    let ari = adjusted_rand_index(
        dbscan.clustering.assignments(),
        dbsvec.clustering.assignments(),
    );
    let speedup = dbscan.seconds / dbsvec.seconds.max(1e-9);

    println!(
        "{:<12} {:>10} {:>10} {:>10}",
        "algorithm", "time", "clusters", "noise"
    );
    for out in [&dbscan, &dbsvec] {
        println!(
            "{:<12} {:>9.3}s {:>10} {:>10}",
            out.algorithm.name(),
            out.seconds,
            out.clustering.num_clusters(),
            out.clustering.noise_count()
        );
    }
    println!();
    println!("recall(DBSVEC vs DBSCAN) = {r:.3}   ARI = {ari:.3}   speedup = {speedup:.1}x");
    println!("paper reports: identical clusters, 7.7x speedup");

    std::fs::create_dir_all("results").expect("create results dir");
    write_csv(
        Path::new("results/fig1_dbscan.csv"),
        points,
        Some(dbscan.clustering.assignments()),
    )
    .expect("write dbscan csv");
    write_csv(
        Path::new("results/fig1_dbsvec.csv"),
        points,
        Some(dbsvec.clustering.assignments()),
    )
    .expect("write dbsvec csv");
    write_svg_scatter(
        Path::new("results/fig1a_dbscan.svg"),
        points,
        dbscan.clustering.assignments(),
        800,
    )
    .expect("write dbscan svg");
    write_svg_scatter(
        Path::new("results/fig1b_dbsvec.svg"),
        points,
        dbsvec.clustering.assignments(),
        800,
    )
    .expect("write dbsvec svg");
    println!("per-point labels: results/fig1_dbscan.csv, results/fig1_dbsvec.csv");
    println!("rendered figures: results/fig1a_dbscan.svg, results/fig1b_dbsvec.svg");

    // ---- The same scene at 10x density. At n = 8000 the per-training SVDD
    // constants rival the (very cheap) R*-tree queries; the paper's C++
    // DBSCAN baseline was far slower per query, which is where its 7.7x
    // came from. Scaling the same workload up restores the wall-clock gap
    // on this substrate while the clusters stay identical.
    println!();
    let mut big = dbsvec_datasets::shapes::scene_t48k().generate(80_000, args.seed);
    big.points = dbsvec_datasets::normalize_to_domain(&big.points, 1e5);
    let min_pts = 20; // the paper's t4.8k setting
    let eps = dbsvec_datasets::standins::suggest_eps(&big.points, min_pts, args.seed) * 3.0;
    println!("same scene at n=80000 (eps={eps:.0}, MinPts={min_pts}):");
    let dbscan_big = run_algorithm(Algorithm::RDbscan, &big.points, eps, min_pts, args.seed);
    let dbsvec_big = run_algorithm(Algorithm::Dbsvec, &big.points, eps, min_pts, args.seed);
    let r_big = recall(
        dbscan_big.clustering.assignments(),
        dbsvec_big.clustering.assignments(),
    );
    println!(
        "  DBSCAN {:.3}s | DBSVEC {:.3}s | speedup {:.1}x | recall {r_big:.3}",
        dbscan_big.seconds,
        dbsvec_big.seconds,
        dbscan_big.seconds / dbsvec_big.seconds.max(1e-9),
    );
}
