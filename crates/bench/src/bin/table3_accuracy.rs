//! Table III — clustering accuracy (pair recall vs exact DBSCAN) of the
//! approximate algorithms over the eleven open datasets.
//!
//! Paper reference values: DBSVEC scores 1.000 everywhere with ν = ν*,
//! ≥ 0.976 with ν = 1/ñ; ρ-approximate and DBSCAN-LSH drop to 0.85–0.99 on
//! several datasets.

use dbsvec_bench::{parse_args, run_algorithm, Algorithm};
use dbsvec_datasets::OpenDataset;
use dbsvec_metrics::recall;

fn main() {
    let args = parse_args();
    let contenders = [
        Algorithm::DbsvecMin,
        Algorithm::Dbsvec,
        Algorithm::RhoApprox,
        Algorithm::DbscanLsh,
    ];

    println!("Table III: clustering accuracy (recall vs R-DBSCAN) over open datasets");
    print!("{:<12} {:>10} {:>4}", "dataset", "n", "d");
    for algo in &contenders {
        print!(" {:>11}", algo.name());
    }
    println!();

    for dataset in OpenDataset::table3() {
        // The accuracy sets are small; generate at full paper cardinality
        // unless the user shrinks them explicitly below 1.
        let scale = if args.scale < 1.0 && dataset.cardinality() > 20_000 {
            args.scale.max(0.25)
        } else {
            1.0
        };
        let standin = dataset.generate_scaled(scale, args.seed);
        let points = &standin.dataset.points;
        let eps = standin.suggested.eps;
        let min_pts = standin.suggested.min_pts;

        let reference = run_algorithm(Algorithm::RDbscan, points, eps, min_pts, args.seed);
        print!(
            "{:<12} {:>10} {:>4}",
            standin.name,
            points.len(),
            points.dims()
        );
        for &algo in &contenders {
            let out = run_algorithm(algo, points, eps, min_pts, args.seed);
            let r = recall(
                reference.clustering.assignments(),
                out.clustering.assignments(),
            );
            print!(" {:>11.3}", r);
        }
        println!();
    }

    println!();
    println!("paper: DBSVEC = 1.000 on all; DBSVEC_min >= 0.976; rho-Appr >= 0.846; LSH >= 0.645");
}
