//! HTTP serving tier — closed-loop load generation over the real socket
//! path.
//!
//! Fits DBSVEC once, persists the model, and serves it with the
//! `crates/server` tier on an ephemeral port. A pool of client threads
//! then drives each endpoint closed-loop (every client waits for its
//! response before sending the next request) over keep-alive
//! connections, timing every request end to end: single assign, batch
//! assign (16 points per body), ingest, and health, at each worker
//! thread count the hardware can honestly run. After each loaded round
//! it scrapes `/metrics` for the server's own stage histograms (queue,
//! parse, route, lock, engine, serialize, write) so client-observed and
//! server-attributed latency land side by side. Writes
//! `BENCH_serve_http.json` with per-endpoint client p50/p95/p99 plus the
//! server-side stage percentiles when `--json DIR` is given.
//!
//! Two envelopes ride along, printed always and asserted under
//! `MICROBENCH_ENFORCE=1`:
//!
//! * SLO: loaded p99 single-assign latency stays under 10× the unloaded
//!   (sequential, single-client) p50 — queueing may stretch the tail,
//!   but not collapse it;
//! * batch ≥ single: a 16-point body must move at least as many points
//!   per second as single-point requests at every thread count, because
//!   it amortizes both the HTTP round trip and the dispatch.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dbsvec_bench::harness::{time, Stopwatch, BENCH_SCHEMA_VERSION};
use dbsvec_bench::parse_args;
use dbsvec_core::{Dbsvec, DbsvecConfig};
use dbsvec_datasets::{gaussian_mixture, standins::suggest_eps};
use dbsvec_engine::{snapshot, ModelArtifact};
use dbsvec_geometry::rng::SplitMix64;
use dbsvec_obs::telemetry::parse_prometheus;
use dbsvec_obs::{Json, NoopObserver};
use dbsvec_server::{Router, Server, ServerConfig, ShutdownFlag};

const DIMS: usize = 8;
const CLUSTERS: usize = 5;
const MIN_PTS: usize = 8;
const BATCH: usize = 16;
/// Loaded p99 must stay under this multiple of the unloaded p50.
const SLO_FACTOR: f64 = 10.0;

/// One keep-alive connection speaking just enough HTTP/1.1 for the
/// bench: write a request, read the framed response, return the status.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to bench server");
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone().expect("clone stream");
        Client {
            reader: BufReader::new(stream),
            writer,
        }
    }

    fn request(&mut self, method: &str, path: &str, body: &str) -> u16 {
        self.request_body(method, path, body).0
    }

    fn request_body(&mut self, method: &str, path: &str, body: &str) -> (u16, String) {
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        self.writer.write_all(head.as_bytes()).expect("write head");
        self.writer.write_all(body.as_bytes()).expect("write body");
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("status line");
        let status: u16 = line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("bad status line {line:?}"));
        let mut content_length = 0usize;
        loop {
            let mut header = String::new();
            self.reader.read_line(&mut header).expect("header line");
            let header = header.trim_end();
            if header.is_empty() {
                break;
            }
            if let Some(v) = header.to_ascii_lowercase().strip_prefix("content-length:") {
                content_length = v.trim().parse().expect("content-length value");
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body).expect("response body");
        (status, String::from_utf8_lossy(&body).into_owned())
    }
}

/// The stage names the server attributes request time to, in order.
const STAGES: [&str; 7] = [
    "queue",
    "parse",
    "route",
    "lock",
    "engine",
    "serialize",
    "write",
];

/// Scrapes `/metrics` after a loaded round and distills the server-side
/// stage and per-endpoint duration summaries into one JSON row.
fn scrape_server_stages(addr: SocketAddr, threads: usize) -> Json {
    let mut client = Client::connect(addr);
    let (status, text) = client.request_body("GET", "/metrics", "");
    assert_eq!(status, 200, "metrics scrape failed");
    let samples = parse_prometheus(&text).expect("metrics exposition parses");
    let summary = |base: &str| {
        let q = |quant: &str| {
            samples
                .iter()
                .find(|s| s.name == base && s.label("quantile") == Some(quant))
                .map_or(0.0, |s| s.value)
        };
        let plain = |suffix: &str| {
            let name = format!("{base}{suffix}");
            samples
                .iter()
                .find(|s| s.name == name)
                .map_or(0.0, |s| s.value)
        };
        Json::obj([
            ("p50_s", Json::Num(q("0.5"))),
            ("p95_s", Json::Num(q("0.95"))),
            ("p99_s", Json::Num(q("0.99"))),
            ("sum_s", Json::Num(plain("_sum"))),
            ("count", Json::UInt(plain("_count") as u64)),
        ])
    };
    let stages: Vec<(&str, Json)> = STAGES
        .iter()
        .map(|&s| (s, summary(&format!("dbsvec_http_stage_{s}_seconds"))))
        .collect();
    let p95 = |j: &Json| match j {
        Json::Obj(fields) => fields
            .iter()
            .find(|(k, _)| k == "p95_s")
            .and_then(|(_, v)| match v {
                Json::Num(n) => Some(*n),
                _ => None,
            })
            .unwrap_or(0.0),
        _ => 0.0,
    };
    let line: Vec<String> = stages
        .iter()
        .map(|(name, j)| format!("{name} p95 {:.1}us", p95(j) * 1e6))
        .collect();
    println!("  server stages ({threads} thread(s)): {}", line.join(", "));
    Json::obj([
        ("threads", Json::UInt(threads as u64)),
        (
            "assign_duration",
            summary("dbsvec_http_request_duration_assign_seconds"),
        ),
        (
            "ingest_duration",
            summary("dbsvec_http_request_duration_ingest_seconds"),
        ),
        (
            "health_duration",
            summary("dbsvec_http_request_duration_health_seconds"),
        ),
        (
            "stages",
            Json::Obj(
                stages
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.clone()))
                    .collect(),
            ),
        ),
    ])
}

/// A deterministic query point near the training distribution.
fn query_point(seed: u64, index: u64, spread: f64) -> Vec<f64> {
    let mut rng = SplitMix64::new(seed ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    (0..DIMS)
        .map(|_| (rng.next_f64() - 0.5) * 2.0 * spread)
        .collect()
}

fn json_point(p: &[f64]) -> String {
    let coords: Vec<String> = p.iter().map(|v| format!("{v}")).collect();
    format!("[{}]", coords.join(","))
}

/// Drives `iters` requests per client closed-loop; returns every
/// per-request latency (seconds) and the phase wall time. Each client
/// sends one untimed warm-up request first, so the accept-loop pickup
/// delay of a fresh connection never lands in the percentiles.
fn drive(
    addr: SocketAddr,
    clients: usize,
    iters: usize,
    make: impl Fn(usize) -> (&'static str, String, String) + Sync,
) -> (Vec<f64>, f64) {
    let make = &make;
    let (latencies, secs) = time(|| {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..clients)
                .map(|c| {
                    scope.spawn(move || {
                        let mut client = Client::connect(addr);
                        let (method, path, body) = make(clients * iters + c);
                        client.request(method, &path, &body);
                        let mut latencies = Vec::with_capacity(iters);
                        for i in 0..iters {
                            let (method, path, body) = make(c * iters + i);
                            let t = Instant::now();
                            let status = client.request(method, &path, &body);
                            latencies.push(t.elapsed().as_secs_f64());
                            assert_eq!(status, 200, "{method} {path} failed");
                        }
                        latencies
                    })
                })
                .collect();
            let mut all = Vec::new();
            for h in handles {
                all.extend(h.join().expect("client thread"));
            }
            all
        })
    });
    (latencies, secs)
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

struct Row {
    threads: usize,
    endpoint: &'static str,
    requests: usize,
    points: u64,
    seconds: f64,
    p50: f64,
    p95: f64,
    p99: f64,
}

impl Row {
    fn from_latencies(
        threads: usize,
        endpoint: &'static str,
        mut latencies: Vec<f64>,
        points_per_request: u64,
        seconds: f64,
    ) -> Row {
        latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Row {
            threads,
            endpoint,
            requests: latencies.len(),
            points: latencies.len() as u64 * points_per_request,
            seconds,
            p50: percentile(&latencies, 0.50),
            p95: percentile(&latencies, 0.95),
            p99: percentile(&latencies, 0.99),
        }
    }

    fn requests_per_sec(&self) -> f64 {
        self.requests as f64 / self.seconds.max(1e-9)
    }

    fn points_per_sec(&self) -> f64 {
        self.points as f64 / self.seconds.max(1e-9)
    }

    fn print(&self) {
        println!(
            "{:>8} {:>12} {:>8} {:>10.0} req/s {:>11.0} pts/s  p50 {:.1}us p95 {:.1}us p99 {:.1}us",
            self.threads,
            self.endpoint,
            self.requests,
            self.requests_per_sec(),
            self.points_per_sec(),
            self.p50 * 1e6,
            self.p95 * 1e6,
            self.p99 * 1e6,
        );
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("threads", Json::UInt(self.threads as u64)),
            ("endpoint", Json::str(self.endpoint)),
            ("requests", Json::UInt(self.requests as u64)),
            ("points", Json::UInt(self.points)),
            ("seconds", Json::Num(self.seconds)),
            ("requests_per_sec", Json::Num(self.requests_per_sec())),
            ("points_per_sec", Json::Num(self.points_per_sec())),
            ("latency_p50_s", Json::Num(self.p50)),
            ("latency_p95_s", Json::Num(self.p95)),
            ("latency_p99_s", Json::Num(self.p99)),
        ])
    }
}

/// One server lifetime at a fixed worker-thread count.
fn serve_round(
    model_path: &std::path::Path,
    threads: usize,
    shards: usize,
    f: impl FnOnce(SocketAddr),
) {
    let mut router = Router::new();
    router
        .load_model(model_path, shards, None)
        .expect("load bench model");
    let router = Arc::new(router);
    let server = Server::bind(
        Arc::clone(&router),
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads,
            ..ServerConfig::default()
        },
    )
    .expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr");
    let shutdown = ShutdownFlag::new();
    let flag = shutdown.clone();
    let handle = std::thread::spawn(move || server.run(&flag, &mut NoopObserver));
    f(addr);
    shutdown.request();
    let report = handle.join().expect("server thread").expect("server run");
    // Ingest phases dirty shards; their persisted snapshots are bench
    // scratch, deleted with the rest of the temp dir.
    drop(report);
}

fn main() {
    let args = parse_args();
    let stopwatch = Stopwatch::with_budget(Duration::from_secs_f64(args.budget_secs));
    let n = ((20_000f64 * args.scale) as usize).max(2_000);
    let iters = ((400f64 * args.scale) as usize).max(50);
    let enforce = std::env::var_os("MICROBENCH_ENFORCE").is_some_and(|v| v == "1");

    // ---- Fit once, persist once; every server round reloads the file.
    let data = gaussian_mixture(n, DIMS, CLUSTERS, 400.0, 1e5, args.seed);
    let eps = suggest_eps(&data.points, MIN_PTS, args.seed);
    let (fit, fit_secs) = time(|| Dbsvec::new(DbsvecConfig::new(eps, MIN_PTS)).fit(&data.points));
    let artifact = ModelArtifact::from_fit(
        &data.points,
        fit.labels(),
        fit.core_points(),
        eps,
        MIN_PTS as u32,
    )
    .expect("fit produces a valid artifact");
    let dir = std::env::temp_dir().join(format!("dbsvec-serve-http-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("bench scratch dir");
    let model_path = dir.join("model.dbm");
    let bytes = snapshot::write_file(&artifact, &model_path).expect("persist bench model");
    println!(
        "fit: n={n}, d={DIMS}, eps={eps:.1} -> {} cores in {fit_secs:.3}s; snapshot {bytes} bytes",
        artifact.cores.len()
    );

    let spread = 400.0 * 2.5; // spans the mixture's support
    let seed = args.seed;
    let assign_single = move |i: usize| {
        let p = query_point(seed, i as u64, spread);
        (
            "POST",
            "/v1/models/model/assign".to_string(),
            format!("{{\"point\":{}}}", json_point(&p)),
        )
    };

    // ---- Unloaded baseline: one client, sequential, one worker.
    let mut unloaded_p50 = 0.0;
    serve_round(&model_path, 1, 1, |addr| {
        let (mut lat, _) = drive(addr, 1, iters, assign_single);
        lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
        unloaded_p50 = percentile(&lat, 0.50);
    });
    println!(
        "unloaded single-assign p50: {:.1}us ({} sequential requests); \
         SLO: loaded p99 < {SLO_FACTOR:.0}x = {:.1}us",
        unloaded_p50 * 1e6,
        iters,
        unloaded_p50 * SLO_FACTOR * 1e6
    );

    // ---- Loaded sweep over worker-thread counts the hardware can run.
    let hardware = std::thread::available_parallelism().map_or(1, |p| p.get());
    let sweep: Vec<usize> = [1usize, 2, 4]
        .into_iter()
        .filter(|&t| t <= hardware)
        .collect();
    println!(
        "{:>8} {:>12} {:>8} {:>16} {:>17}",
        "threads", "endpoint", "requests", "throughput", "latency"
    );
    let mut rows: Vec<Row> = Vec::new();
    let mut server_stage_rows: Vec<Json> = Vec::new();
    let mut slo_pass = true;
    let mut batch_pass = true;
    for &threads in &sweep {
        if stopwatch.exhausted() {
            println!("{threads:>8}  (budget exhausted)");
            break;
        }
        serve_round(&model_path, threads, 2, |addr| {
            let (lat, secs) = drive(addr, threads, iters, assign_single);
            let single = Row::from_latencies(threads, "assign", lat, 1, secs);
            single.print();

            let assign_batch = move |i: usize| {
                let pts: Vec<String> = (0..BATCH)
                    .map(|k| {
                        json_point(&query_point(seed ^ 0xb47c, (i * BATCH + k) as u64, spread))
                    })
                    .collect();
                (
                    "POST",
                    "/v1/models/model/assign".to_string(),
                    format!("{{\"points\":[{}]}}", pts.join(",")),
                )
            };
            let (lat, secs) = drive(addr, threads, iters.div_ceil(4), assign_batch);
            let batch = Row::from_latencies(threads, "assign_batch", lat, BATCH as u64, secs);
            batch.print();

            let ingest = move |i: usize| {
                // Far outside the mixture, so every ingest is novel work.
                let mut p = query_point(seed ^ 0x1497, i as u64, spread);
                p[0] += 1e7 + i as f64;
                (
                    "POST",
                    "/v1/models/model/ingest".to_string(),
                    format!("{{\"point\":{}}}", json_point(&p)),
                )
            };
            let (lat, secs) = drive(addr, threads, iters.div_ceil(4), ingest);
            let ingest_row = Row::from_latencies(threads, "ingest", lat, 1, secs);
            ingest_row.print();

            let health = |_: usize| ("GET", "/v1/models/model/health".to_string(), String::new());
            let (lat, secs) = drive(addr, threads, iters.div_ceil(4), health);
            let health_row = Row::from_latencies(threads, "health", lat, 0, secs);
            health_row.print();

            let slo_target = unloaded_p50 * SLO_FACTOR;
            if single.p99 >= slo_target {
                slo_pass = false;
                println!(
                    "  SLO MISS at {threads} thread(s): loaded p99 {:.1}us >= {:.1}us",
                    single.p99 * 1e6,
                    slo_target * 1e6
                );
            }
            if batch.points_per_sec() < single.points_per_sec() {
                batch_pass = false;
                println!(
                    "  BATCH REGRESSION at {threads} thread(s): {:.0} pts/s batch < {:.0} pts/s single",
                    batch.points_per_sec(),
                    single.points_per_sec()
                );
            }
            rows.extend([single, batch, ingest_row, health_row]);
            // Server's own attribution of where that round's time went,
            // scraped before this round's server shuts down.
            server_stage_rows.push(scrape_server_stages(addr, threads));
        });
    }

    println!(
        "slo: {} | batch >= single at every thread count: {}",
        if slo_pass { "pass" } else { "MISS" },
        if batch_pass { "pass" } else { "FAIL" }
    );

    if let Some(json_dir) = &args.json_dir {
        let report = Json::obj([
            ("version", Json::UInt(BENCH_SCHEMA_VERSION)),
            ("experiment", Json::str("serve_http")),
            ("n", Json::UInt(n as u64)),
            ("dims", Json::UInt(DIMS as u64)),
            ("cores", Json::UInt(artifact.cores.len() as u64)),
            ("hardware_threads", Json::UInt(hardware as u64)),
            (
                "clients_policy",
                Json::str("one keep-alive client per worker thread"),
            ),
            ("batch_size", Json::UInt(BATCH as u64)),
            ("unloaded_assign_p50_s", Json::Num(unloaded_p50)),
            ("slo_factor", Json::Num(SLO_FACTOR)),
            ("slo_pass", Json::Bool(slo_pass)),
            ("batch_ge_single", Json::Bool(batch_pass)),
            ("runs", Json::Arr(rows.iter().map(Row::to_json).collect())),
            ("server_stages", Json::Arr(server_stage_rows.clone())),
        ]);
        if let Err(e) = std::fs::create_dir_all(json_dir) {
            eprintln!("cannot create {json_dir}: {e}");
        } else {
            let path = std::path::Path::new(json_dir).join("BENCH_serve_http.json");
            match std::fs::write(&path, format!("{report}\n")) {
                Ok(()) => println!("json report written to {}", path.display()),
                Err(e) => eprintln!("cannot write json report to {json_dir}: {e}"),
            }
        }
    }

    std::fs::remove_dir_all(&dir).ok();
    if enforce {
        assert!(
            slo_pass,
            "SLO: loaded p99 assign must stay under {SLO_FACTOR}x the unloaded p50"
        );
        assert!(
            batch_pass,
            "batch assign must move at least as many points/s as single at every thread count"
        );
    }
}
