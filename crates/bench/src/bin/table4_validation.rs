//! Table IV — internal clustering validation: DBSVEC vs k-MEANS.
//!
//! Compactness ("C", silhouette, higher is better) and Separation
//! ("S", Davies–Bouldin, lower is better) on the Miss-America (d=16),
//! Breast-Cancer (d=9), and Dim64 (d=64) datasets.
//!
//! Paper reference values:
//! ```text
//!            Miss. C/S      Breast. C/S    Dim64 C/S
//! DBSVEC     0.424/0.833    0.667/0.687    0.966/0.050
//! k-MEANS    0.087/2.268    0.597/0.761    0.966/0.050
//! ```

use dbsvec_bench::{parse_args, run_algorithm, Algorithm};
use dbsvec_datasets::OpenDataset;
use dbsvec_metrics::{davies_bouldin_separation, silhouette_compactness};

fn main() {
    let args = parse_args();
    let datasets = [
        OpenDataset::MissAmerica,
        OpenDataset::BreastCancer,
        OpenDataset::Dim64,
    ];

    println!("Table IV: internal validation (C = silhouette compactness, S = Davies-Bouldin)");
    println!(
        "{:<10} {:<12} {:>8} {:>8} {:>8} {:>10}",
        "algorithm", "dataset", "C", "S", "clusters", "time"
    );

    for dataset in datasets {
        let standin = dataset.generate(args.seed);
        let points = &standin.dataset.points;
        let eps = standin.suggested.eps;
        let min_pts = standin.suggested.min_pts;
        let k = standin.dataset.truth_clusters().max(2);

        for algo in [Algorithm::Dbsvec, Algorithm::KMeans(k)] {
            let out = run_algorithm(algo, points, eps, min_pts, args.seed);
            let c = silhouette_compactness(points, out.clustering.assignments());
            let s = davies_bouldin_separation(points, out.clustering.assignments());
            println!(
                "{:<10} {:<12} {:>8.3} {:>8.3} {:>8} {:>9.3}s",
                out.algorithm.name(),
                standin.name,
                c,
                s,
                out.clustering.num_clusters(),
                out.seconds
            );
        }
    }

    println!();
    println!("expected shape: DBSVEC's C >= k-MEANS's C and S <= k-MEANS's S on every dataset");
}
