//! Serve-time drift detection — does the quality monitor separate
//! drifted traffic from stationary traffic?
//!
//! Fits DBSVEC on a Gaussian mixture, records the fit-time quality
//! baseline into the model, and then serves two synthetic query streams
//! through [`Engine::assign_monitored`]:
//!
//! * **stationary** — training points jittered by at most ε/2 per
//!   coordinate, i.e. traffic drawn from the fitted distribution;
//! * **drifted** — the same jitter plus a constant 3·ε offset on every
//!   coordinate, a population shift the model has never seen.
//!
//! Each stream gets a fresh engine and a fresh [`QualityMonitor`], so
//! the two runs cannot contaminate each other. The experiment asserts —
//! unconditionally, not just under an env var — that the monitor flags
//! the drifted stream (smoothed score at or above the alert threshold)
//! while leaving the stationary stream unflagged, and writes the
//! separation evidence to `BENCH_serve_drift.json` when `--json DIR`
//! is given.

use dbsvec_bench::harness::{time, BENCH_SCHEMA_VERSION};
use dbsvec_bench::parse_args;
use dbsvec_core::{Dbsvec, DbsvecConfig};
use dbsvec_datasets::{gaussian_mixture, standins::suggest_eps};
use dbsvec_engine::{Engine, ModelArtifact, MonitorConfig, QualityMonitor};
use dbsvec_geometry::rng::SplitMix64;
use dbsvec_geometry::PointSet;
use dbsvec_obs::{Json, NoopObserver};

const DIMS: usize = 8;
const CLUSTERS: usize = 5;
const MIN_PTS: usize = 8;
/// Tumbling-window size: small enough that even the quick-mode stream
/// completes several windows, large enough for stable histograms.
const WINDOW: usize = 256;
/// Per-coordinate displacement of the drifted stream, in units of ε.
/// Three ε per coordinate over 8 dimensions moves every query ~8.5 ε
/// away from its source point — far outside any core's reach.
const DRIFT_EPS_PER_DIM: f64 = 3.0;

/// What serving one stream through a monitored engine concluded.
struct StreamOutcome {
    name: &'static str,
    queries: usize,
    secs: f64,
    windows: u64,
    alerts: u64,
    smoothed_score: f64,
    dominant: &'static str,
    drift_exceeded: bool,
}

impl StreamOutcome {
    fn row(&self) -> Json {
        Json::obj([
            ("stream", Json::str(self.name)),
            ("n_queries", Json::UInt(self.queries as u64)),
            ("seconds", Json::Num(self.secs)),
            ("windows", Json::UInt(self.windows)),
            ("alerts", Json::UInt(self.alerts)),
            ("smoothed_score", Json::Num(self.smoothed_score)),
            ("dominant_signal", Json::str(self.dominant)),
            ("drift_exceeded", Json::Bool(self.drift_exceeded)),
        ])
    }
}

/// Builds a query stream from the training points: jitter of at most
/// ε/2 per coordinate, plus `offset` ε on every coordinate.
fn make_stream(points: &PointSet, n_queries: usize, eps: f64, offset: f64, seed: u64) -> PointSet {
    let mut rng = SplitMix64::new(seed);
    let mut out = PointSet::new(DIMS);
    let mut buf = vec![0.0; DIMS];
    let n = points.len();
    for i in 0..n_queries {
        let p = points.point((i % n) as u32);
        for (d, v) in buf.iter_mut().enumerate() {
            *v = p[d] + (rng.next_f64() - 0.5) * eps + offset * eps;
        }
        out.push(&buf);
    }
    out
}

/// Serves `queries` through a fresh monitored engine and summarizes
/// what the monitor saw.
fn serve_stream(
    name: &'static str,
    artifact: &ModelArtifact,
    queries: &PointSet,
    threshold: f64,
) -> StreamOutcome {
    let mut engine = Engine::new(artifact);
    let mut monitor: QualityMonitor = engine.monitor(
        MonitorConfig::new()
            .with_window(WINDOW)
            .with_drift_threshold(threshold),
    );
    assert!(
        monitor.has_baseline(),
        "the artifact must carry a quality baseline for this experiment"
    );
    let mut obs = NoopObserver;
    let (_, secs) = time(|| {
        for i in 0..queries.len() {
            engine.assign_monitored(queries.point(i as u32), &mut monitor, &mut obs);
        }
    });
    let signals = monitor
        .signals()
        .expect("at least one window must complete");
    StreamOutcome {
        name,
        queries: queries.len(),
        secs,
        windows: monitor.windows_completed(),
        alerts: monitor.alerts(),
        smoothed_score: signals.smoothed_score,
        dominant: signals.dominant(),
        drift_exceeded: monitor.drift_exceeded(),
    }
}

fn main() {
    let args = parse_args();
    let n = ((50_000f64 * args.scale) as usize).max(2_000);
    let n_queries = n.max(4 * WINDOW);
    let threshold = 0.35;

    // ---- Fit once; the quality baseline rides in the artifact.
    let data = gaussian_mixture(n, DIMS, CLUSTERS, 400.0, 1e5, args.seed);
    let eps = suggest_eps(&data.points, MIN_PTS, args.seed);
    let (fit, fit_secs) = time(|| Dbsvec::new(DbsvecConfig::new(eps, MIN_PTS)).fit(&data.points));
    let artifact = ModelArtifact::from_fit(
        &data.points,
        fit.labels(),
        fit.core_points(),
        eps,
        MIN_PTS as u32,
    )
    .expect("fit produces a valid artifact")
    .with_quality(&data.points, fit.labels());
    println!(
        "fit: n={n}, d={DIMS}, eps={eps:.1} -> {} cores, {} clusters in {fit_secs:.3}s",
        artifact.cores.len(),
        artifact.num_clusters
    );
    println!("monitor: window {WINDOW}, drift threshold {threshold}, {n_queries} queries/stream");

    // ---- Two streams over the same model: in-distribution vs shifted.
    let stationary_queries = make_stream(&data.points, n_queries, eps, 0.0, args.seed ^ 0xd41f7);
    let drifted_queries = make_stream(
        &data.points,
        n_queries,
        eps,
        DRIFT_EPS_PER_DIM,
        args.seed ^ 0xd41f7,
    );
    let stationary = serve_stream("stationary", &artifact, &stationary_queries, threshold);
    let drifted = serve_stream("drifted", &artifact, &drifted_queries, threshold);

    println!(
        "{:>12} {:>8} {:>8} {:>8} {:>10} {:>16} {:>8}",
        "stream", "windows", "alerts", "score", "dominant", "drift_exceeded", "pts/s"
    );
    for s in [&stationary, &drifted] {
        println!(
            "{:>12} {:>8} {:>8} {:>8.3} {:>10} {:>16} {:>8.0}",
            s.name,
            s.windows,
            s.alerts,
            s.smoothed_score,
            s.dominant,
            s.drift_exceeded,
            s.queries as f64 / s.secs.max(1e-9)
        );
    }

    // ---- The claim this experiment exists to prove, asserted on every
    // run (not just under MICROBENCH_ENFORCE): the monitor must flag
    // the shifted population and stay quiet on the stationary one.
    assert!(
        drifted.drift_exceeded && drifted.smoothed_score >= threshold,
        "drifted stream must trip the monitor (smoothed {:.3} vs threshold {threshold})",
        drifted.smoothed_score
    );
    assert!(
        !stationary.drift_exceeded && stationary.smoothed_score < threshold,
        "stationary stream must stay below the threshold (smoothed {:.3} vs {threshold})",
        stationary.smoothed_score
    );
    assert!(
        drifted.smoothed_score > stationary.smoothed_score,
        "separation must be strictly ordered"
    );
    let separation = drifted.smoothed_score - stationary.smoothed_score;
    println!(
        "separation: drifted {:.3} - stationary {:.3} = {separation:.3} (threshold {threshold})",
        drifted.smoothed_score, stationary.smoothed_score
    );

    if let Some(dir) = &args.json_dir {
        let report = Json::obj([
            ("version", Json::UInt(BENCH_SCHEMA_VERSION)),
            ("experiment", Json::str("serve_drift")),
            ("n", Json::UInt(n as u64)),
            ("dims", Json::UInt(DIMS as u64)),
            ("clusters", Json::UInt(CLUSTERS as u64)),
            ("window", Json::UInt(WINDOW as u64)),
            ("drift_threshold", Json::Num(threshold)),
            ("drift_eps_per_dim", Json::Num(DRIFT_EPS_PER_DIM)),
            ("separation", Json::Num(separation)),
            ("runs", Json::Arr(vec![stationary.row(), drifted.row()])),
        ]);
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {dir}: {e}");
            return;
        }
        let path = std::path::Path::new(dir).join("BENCH_serve_drift.json");
        match std::fs::write(&path, format!("{report}\n")) {
            Ok(()) => println!("json report written to {}", path.display()),
            Err(e) => eprintln!("cannot write json report to {dir}: {e}"),
        }
    }
}
