//! Serving throughput — single-point assignment vs scoped-thread batch
//! fan-out over a persisted model.
//!
//! Fits DBSVEC once, persists the model through the binary snapshot
//! format, reloads it into an [`Engine`], and then measures how fast the
//! engine labels a stream of unseen queries: one `assign` call per point
//! versus `assign_batch` at increasing thread counts. Writes
//! `BENCH_serve_throughput.json` when `--json DIR` is given.
//!
//! The batch path only wins on multi-core machines (the fan-out is plain
//! `std::thread::scope` over contiguous chunks); on a single core the
//! speedup hovers around 1x, so the report records the measured ratio
//! rather than asserting a target.

use std::time::Duration;

use dbsvec_bench::harness::{time, Stopwatch};
use dbsvec_bench::parse_args;
use dbsvec_core::{Dbsvec, DbsvecConfig};
use dbsvec_datasets::{gaussian_mixture, standins::suggest_eps};
use dbsvec_engine::{snapshot, Engine, ModelArtifact};
use dbsvec_geometry::rng::SplitMix64;
use dbsvec_geometry::PointSet;
use dbsvec_obs::Json;

const DIMS: usize = 8;
const CLUSTERS: usize = 5;
const MIN_PTS: usize = 8;

fn main() {
    let args = parse_args();
    let stopwatch = Stopwatch::with_budget(Duration::from_secs_f64(args.budget_secs));
    let n = ((200_000f64 * args.scale) as usize).max(2_000);
    let n_queries = n;

    // ---- Fit once and round-trip the model through the snapshot format.
    let data = gaussian_mixture(n, DIMS, CLUSTERS, 400.0, 1e5, args.seed);
    let eps = suggest_eps(&data.points, MIN_PTS, args.seed);
    let (fit, fit_secs) = time(|| Dbsvec::new(DbsvecConfig::new(eps, MIN_PTS)).fit(&data.points));
    let artifact = ModelArtifact::from_fit(
        &data.points,
        fit.labels(),
        fit.core_points(),
        eps,
        MIN_PTS as u32,
    )
    .expect("fit produces a valid artifact");
    let (bytes, encode_secs) = time(|| snapshot::encode(&artifact));
    let (decoded, decode_secs) = time(|| snapshot::decode(&bytes).expect("own bytes decode"));
    println!(
        "fit: n={n}, d={DIMS}, eps={eps:.1} -> {} cores, {} clusters in {fit_secs:.3}s",
        artifact.cores.len(),
        artifact.num_clusters
    );
    println!(
        "snapshot: {} bytes, encode {:.1}ms, decode {:.1}ms",
        bytes.len(),
        encode_secs * 1e3,
        decode_secs * 1e3
    );

    // ---- Queries the model has not seen: jittered training points.
    let mut rng = SplitMix64::new(args.seed ^ 0x5e12e);
    let mut queries = PointSet::new(DIMS);
    let mut buf = vec![0.0; DIMS];
    for i in 0..n_queries {
        let p = data.points.point((i % n) as u32);
        for (d, v) in buf.iter_mut().enumerate() {
            *v = p[d] + (rng.next_f64() - 0.5) * eps;
        }
        queries.push(&buf);
    }

    let mut engine = Engine::new(&decoded);
    let mut runs: Vec<Json> = Vec::new();
    let mut best_batch_pps: f64 = 0.0;

    // Single-point path: one assign call per query.
    let (hits, secs) = time(|| {
        let mut hits = 0usize;
        for i in 0..queries.len() {
            if engine.assign(queries.point(i as u32)).cluster().is_some() {
                hits += 1;
            }
        }
        hits
    });
    let single_pps = queries.len() as f64 / secs.max(1e-9);
    println!(
        "{:>8} {:>8} {:>10} {:>12.0} pts/s  ({} clustered)",
        "single",
        1,
        queries.len(),
        single_pps,
        hits
    );
    runs.push(Json::obj([
        ("mode", Json::str("single")),
        ("threads", Json::UInt(1)),
        ("n_queries", Json::UInt(queries.len() as u64)),
        ("seconds", Json::Num(secs)),
        ("points_per_sec", Json::Num(single_pps)),
    ]));

    // Batch path at increasing thread counts.
    let hardware = std::thread::available_parallelism().map_or(1, |p| p.get());
    for threads in [1usize, 2, 4, 8] {
        if stopwatch.exhausted() {
            println!("{threads:>8}  (budget exhausted)");
            break;
        }
        let (assignments, secs) = time(|| engine.assign_batch(&queries, threads));
        let pps = assignments.len() as f64 / secs.max(1e-9);
        best_batch_pps = best_batch_pps.max(pps);
        println!(
            "{:>8} {:>8} {:>10} {:>12.0} pts/s",
            "batch",
            threads,
            assignments.len(),
            pps
        );
        runs.push(Json::obj([
            ("mode", Json::str("batch")),
            ("threads", Json::UInt(threads as u64)),
            ("n_queries", Json::UInt(assignments.len() as u64)),
            ("seconds", Json::Num(secs)),
            ("points_per_sec", Json::Num(pps)),
        ]));
    }

    let speedup = best_batch_pps / single_pps.max(1e-9);
    println!("best batch vs single: {speedup:.2}x on {hardware} hardware thread(s)");

    if let Some(dir) = &args.json_dir {
        let report = Json::obj([
            ("experiment", Json::str("serve_throughput")),
            ("n", Json::UInt(n as u64)),
            ("dims", Json::UInt(DIMS as u64)),
            ("cores", Json::UInt(artifact.cores.len() as u64)),
            ("snapshot_bytes", Json::UInt(bytes.len() as u64)),
            ("hardware_threads", Json::UInt(hardware as u64)),
            ("runs", Json::Arr(runs)),
            ("speedup_best_batch_vs_single", Json::Num(speedup)),
        ]);
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {dir}: {e}");
            return;
        }
        let path = std::path::Path::new(dir).join("BENCH_serve_throughput.json");
        match std::fs::write(&path, format!("{report}\n")) {
            Ok(()) => println!("json report written to {}", path.display()),
            Err(e) => eprintln!("cannot write json report to {dir}: {e}"),
        }
    }
}
