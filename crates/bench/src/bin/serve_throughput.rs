//! Serving throughput — single-point assignment vs scoped-thread batch
//! fan-out over a persisted model.
//!
//! Fits DBSVEC once, persists the model through the binary snapshot
//! format, reloads it into an [`Engine`], and then measures how fast the
//! engine labels a stream of unseen queries: one `assign` call per point
//! versus `assign_batch` at increasing thread counts. Every run records
//! per-call latency through [`EngineMetrics`], so the report carries
//! p50/p95/p99 alongside throughput. Writes
//! `BENCH_serve_throughput.json` when `--json DIR` is given.
//!
//! The thread sweep is capped at the machine's hardware parallelism —
//! oversubscribed runs measure scheduler noise, not the fan-out — and any
//! run using every hardware thread is marked `saturated` (its timing
//! thread competes with the workers, so treat the number as a floor).

use std::time::Duration;

use dbsvec_bench::harness::{time, Stopwatch, BENCH_SCHEMA_VERSION};
use dbsvec_bench::parse_args;
use dbsvec_core::{Dbsvec, DbsvecConfig};
use dbsvec_datasets::{gaussian_mixture, standins::suggest_eps};
use dbsvec_engine::{snapshot, Engine, EngineMetrics, ModelArtifact};
use dbsvec_geometry::rng::SplitMix64;
use dbsvec_geometry::PointSet;
use dbsvec_obs::telemetry::HistogramMetric;
use dbsvec_obs::Json;

const DIMS: usize = 8;
const CLUSTERS: usize = 5;
const MIN_PTS: usize = 8;

/// One report row: throughput plus the latency percentiles of the run.
#[allow(clippy::too_many_arguments)]
fn run_row(
    mode: &str,
    threads: usize,
    n_queries: usize,
    secs: f64,
    pps: f64,
    saturated: bool,
    latency: &HistogramMetric,
) -> Json {
    let s = latency.histogram().summary();
    Json::obj([
        ("mode", Json::str(mode)),
        ("threads", Json::UInt(threads as u64)),
        ("n_queries", Json::UInt(n_queries as u64)),
        ("seconds", Json::Num(secs)),
        ("points_per_sec", Json::Num(pps)),
        ("saturated", Json::Bool(saturated)),
        ("latency_p50_s", Json::Num(latency.scaled(s.p50))),
        ("latency_p95_s", Json::Num(latency.scaled(s.p95))),
        ("latency_p99_s", Json::Num(latency.scaled(s.p99))),
    ])
}

fn print_row(
    mode: &str,
    threads: usize,
    n_queries: usize,
    pps: f64,
    saturated: bool,
    latency: &HistogramMetric,
) {
    let s = latency.histogram().summary();
    println!(
        "{mode:>8} {threads:>8} {n_queries:>10} {pps:>12.0} pts/s  \
         p50 {:.1}us p95 {:.1}us p99 {:.1}us{}",
        latency.scaled(s.p50) * 1e6,
        latency.scaled(s.p95) * 1e6,
        latency.scaled(s.p99) * 1e6,
        if saturated { "  (saturated)" } else { "" }
    );
}

fn main() {
    let args = parse_args();
    let stopwatch = Stopwatch::with_budget(Duration::from_secs_f64(args.budget_secs));
    let n = ((200_000f64 * args.scale) as usize).max(2_000);
    let n_queries = n;

    // ---- Fit once and round-trip the model through the snapshot format.
    let data = gaussian_mixture(n, DIMS, CLUSTERS, 400.0, 1e5, args.seed);
    let eps = suggest_eps(&data.points, MIN_PTS, args.seed);
    let (fit, fit_secs) = time(|| Dbsvec::new(DbsvecConfig::new(eps, MIN_PTS)).fit(&data.points));
    let artifact = ModelArtifact::from_fit(
        &data.points,
        fit.labels(),
        fit.core_points(),
        eps,
        MIN_PTS as u32,
    )
    .expect("fit produces a valid artifact");
    let (bytes, encode_secs) = time(|| snapshot::encode(&artifact));
    let (decoded, decode_secs) = time(|| snapshot::decode(&bytes).expect("own bytes decode"));
    println!(
        "fit: n={n}, d={DIMS}, eps={eps:.1} -> {} cores, {} clusters in {fit_secs:.3}s",
        artifact.cores.len(),
        artifact.num_clusters
    );
    println!(
        "snapshot: {} bytes, encode {:.1}ms, decode {:.1}ms",
        bytes.len(),
        encode_secs * 1e3,
        decode_secs * 1e3
    );

    // ---- Queries the model has not seen: jittered training points.
    let mut rng = SplitMix64::new(args.seed ^ 0x5e12e);
    let mut queries = PointSet::new(DIMS);
    let mut buf = vec![0.0; DIMS];
    for i in 0..n_queries {
        let p = data.points.point((i % n) as u32);
        for (d, v) in buf.iter_mut().enumerate() {
            *v = p[d] + (rng.next_f64() - 0.5) * eps;
        }
        queries.push(&buf);
    }

    let mut engine = Engine::new(&decoded);
    let mut runs: Vec<Json> = Vec::new();
    let hardware = std::thread::available_parallelism().map_or(1, |p| p.get());

    // Single-point path: one assign call per query, each timed.
    let mut single_metrics = EngineMetrics::new();
    let (hits, secs) = {
        let m = &mut single_metrics;
        let e = &mut engine;
        time(|| {
            let mut hits = 0usize;
            for i in 0..queries.len() {
                if e.assign_metered(queries.point(i as u32), m)
                    .cluster()
                    .is_some()
                {
                    hits += 1;
                }
            }
            hits
        })
    };
    let single_pps = queries.len() as f64 / secs.max(1e-9);
    let saturated = hardware == 1;
    print_row(
        "single",
        1,
        queries.len(),
        single_pps,
        saturated,
        single_metrics.assign_latency(),
    );
    println!("  ({hits} clustered)");
    runs.push(run_row(
        "single",
        1,
        queries.len(),
        secs,
        single_pps,
        saturated,
        single_metrics.assign_latency(),
    ));

    // Batch path at increasing thread counts, capped at the hardware:
    // oversubscription only benchmarks the scheduler.
    let sweep: Vec<usize> = [1usize, 2, 4, 8]
        .into_iter()
        .filter(|&t| t <= hardware)
        .collect();
    let dropped: Vec<usize> = [1usize, 2, 4, 8]
        .into_iter()
        .filter(|&t| t > hardware)
        .collect();
    if !dropped.is_empty() {
        println!("thread sweep capped at {hardware} hardware thread(s); skipping {dropped:?}");
    }
    let mut best_batch_pps: f64 = 0.0;
    let mut best_unsaturated_pps: f64 = 0.0;
    for &threads in &sweep {
        if stopwatch.exhausted() {
            println!("{threads:>8}  (budget exhausted)");
            break;
        }
        let mut metrics = EngineMetrics::new();
        let (assignments, secs) = {
            let m = &mut metrics;
            let e = &mut engine;
            time(|| e.assign_batch_metered(&queries, threads, m))
        };
        let pps = assignments.len() as f64 / secs.max(1e-9);
        let saturated = threads >= hardware;
        best_batch_pps = best_batch_pps.max(pps);
        if !saturated {
            best_unsaturated_pps = best_unsaturated_pps.max(pps);
        }
        print_row(
            "batch",
            threads,
            assignments.len(),
            pps,
            saturated,
            metrics.assign_latency(),
        );
        runs.push(run_row(
            "batch",
            threads,
            assignments.len(),
            secs,
            pps,
            saturated,
            metrics.assign_latency(),
        ));
    }

    // Dynamic-maintenance path: interleaved ingest/remove churn over the
    // served model. Every inserted point is eventually removed, so the
    // row times the full decremental repair (demotions, connectivity
    // splits, compaction) — latency percentiles come from the removal
    // histogram, not the assign one.
    if stopwatch.exhausted() {
        println!(" dynamic  (budget exhausted)");
    } else {
        let n_dyn = (n / 10).clamp(500, 20_000).min(queries.len());
        let mut dyn_metrics = EngineMetrics::new();
        let mut tracked: Vec<Vec<f64>> = Vec::with_capacity(n_dyn);
        let (_, secs) = {
            let m = &mut dyn_metrics;
            let e = &mut engine;
            time(|| {
                for i in 0..n_dyn {
                    tracked.push(queries.point(i as u32).to_vec());
                    e.ingest(tracked.last().unwrap());
                    // Remove a point half a lifetime old: steady churn
                    // rather than build-then-teardown.
                    if i % 2 == 1 {
                        let victim = tracked.swap_remove((i / 2) % tracked.len());
                        e.remove_metered(&victim, m);
                    }
                }
                for p in tracked.drain(..) {
                    e.remove_metered(&p, m);
                }
            })
        };
        let ops = 2 * n_dyn;
        let pps = ops as f64 / secs.max(1e-9);
        print_row(
            "dynamic",
            1,
            ops,
            pps,
            hardware == 1,
            dyn_metrics.remove_latency(),
        );
        runs.push(run_row(
            "serve_dynamic",
            1,
            ops,
            secs,
            pps,
            hardware == 1,
            dyn_metrics.remove_latency(),
        ));
    }

    let speedup = best_batch_pps / single_pps.max(1e-9);
    if hardware == 1 {
        println!(
            "best batch vs single: {speedup:.2}x — every run saturated on 1 hardware thread, \
             so this measures fan-out overhead, not speedup"
        );
    } else {
        println!("best batch vs single: {speedup:.2}x on {hardware} hardware thread(s)");
    }

    if let Some(dir) = &args.json_dir {
        let report = Json::obj([
            ("version", Json::UInt(BENCH_SCHEMA_VERSION)),
            ("experiment", Json::str("serve_throughput")),
            ("n", Json::UInt(n as u64)),
            ("dims", Json::UInt(DIMS as u64)),
            ("cores", Json::UInt(artifact.cores.len() as u64)),
            ("snapshot_bytes", Json::UInt(bytes.len() as u64)),
            ("hardware_threads", Json::UInt(hardware as u64)),
            ("runs", Json::Arr(runs)),
            ("speedup_best_batch_vs_single", Json::Num(speedup)),
            // On a saturated box the speedup is apples-to-oranges; this
            // flag tells report consumers to ignore it.
            ("speedup_saturated", Json::Bool(best_unsaturated_pps == 0.0)),
        ]);
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {dir}: {e}");
            return;
        }
        let path = std::path::Path::new(dir).join("BENCH_serve_throughput.json");
        match std::fs::write(&path, format!("{report}\n")) {
            Ok(()) => println!("json report written to {}", path.display()),
            Err(e) => eprintln!("cannot write json report to {dir}: {e}"),
        }
    }
}
