//! Fig. 9 — effect of the three SVDD improvements.
//!
//! * `recall` (Fig. 9a): recall of `DBSVEC\WF` (no adaptive weights),
//!   `DBSVEC\IL` (no incremental learning), and full DBSVEC against exact
//!   DBSCAN over the Table III datasets. Paper: weights are worth 3–8
//!   recall points; incremental learning barely moves accuracy.
//! * `efficiency` (Fig. 9b): runtime of `DBSVEC\IL`, `DBSVEC\OK` (random
//!   kernel widths), and full DBSVEC on the 8-d synthetic workload.
//!   Paper: both ablations are substantially slower than full DBSVEC.

use dbsvec_bench::{parse_args, run_algorithm, Algorithm, BenchArgs};
use dbsvec_datasets::{random_walk_clusters, OpenDataset, RandomWalkConfig};
use dbsvec_metrics::recall;

fn main() {
    let args = parse_args();
    match args.free.first().map(String::as_str).unwrap_or("all") {
        "recall" => recall_panel(&args),
        "efficiency" => efficiency_panel(&args),
        "all" => {
            recall_panel(&args);
            println!();
            efficiency_panel(&args);
        }
        other => {
            eprintln!("unknown subcommand {other}; use recall|efficiency|all");
            std::process::exit(2);
        }
    }
}

fn recall_panel(args: &BenchArgs) {
    let variants = [
        Algorithm::DbsvecNoWeights,
        Algorithm::DbsvecNoIncremental,
        Algorithm::Dbsvec,
    ];
    println!("Fig. 9a: recall of the SVDD-improvement ablations (vs R-DBSCAN)");
    print!("{:<12}", "dataset");
    for algo in &variants {
        print!(" {:>11}", algo.name());
    }
    println!();

    for dataset in OpenDataset::table3() {
        let scale = if dataset.cardinality() > 20_000 {
            args.scale.max(0.25)
        } else {
            1.0
        };
        let standin = dataset.generate_scaled(scale, args.seed);
        let points = &standin.dataset.points;
        let eps = standin.suggested.eps;
        let min_pts = standin.suggested.min_pts;
        let reference = run_algorithm(Algorithm::RDbscan, points, eps, min_pts, args.seed);

        print!("{:<12}", standin.name);
        for &algo in &variants {
            let out = run_algorithm(algo, points, eps, min_pts, args.seed);
            let r = recall(
                reference.clustering.assignments(),
                out.clustering.assignments(),
            );
            print!(" {:>11.3}", r);
        }
        println!();
    }
    println!("paper shape: full DBSVEC >= DBSVEC\\WF; DBSVEC\\IL ~ DBSVEC");
}

fn efficiency_panel(args: &BenchArgs) {
    // \IL retrains on the whole sub-cluster each round (quadratic in the
    // cluster size), so this panel uses a smaller default workload.
    let n = ((2_000_000f64 * args.scale * 0.25) as usize).max(2_000);
    let ds = random_walk_clusters(&RandomWalkConfig::paper_default(n, 8), args.seed);
    let variants = [
        Algorithm::DbsvecNoIncremental,
        Algorithm::DbsvecRandomKernel,
        Algorithm::Dbsvec,
    ];

    println!("Fig. 9b: runtime of the efficiency ablations (d=8 synthetic, n={n})");
    println!("{:<12} {:>10}", "variant", "time");
    for algo in variants {
        let out = run_algorithm(algo, &ds.points, 5000.0, 100, args.seed);
        println!("{:<12} {:>9.3}s", out.algorithm.name(), out.seconds);
    }
    println!(
        "paper shape: DBSVEC < DBSVEC\\OK < DBSVEC\\IL (incremental learning saves up to 10x)"
    );
}
