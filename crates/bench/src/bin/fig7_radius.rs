//! Fig. 7 — effect of the radius ε on runtime.
//!
//! Sweeps ε from 5000 to 55000 (the paper's range) on the 8-d synthetic
//! workload, and repeats a shorter sweep on the Corel-Image stand-in
//! (Fig. 7d's point: on real data the space is large relative to ε, which
//! floods grid methods with cells).
//!
//! Paper shape: R-/kd-DBSCAN and DBSCAN-LSH degrade as ε grows; DBSVEC
//! gets *faster* (fewer SVDD rounds are needed when each range query
//! swallows more of the cluster).

use std::collections::HashSet;
use std::time::Duration;

use dbsvec_bench::harness::{fmt_secs, Stopwatch};
use dbsvec_bench::{parse_args, run_algorithm, Algorithm};
use dbsvec_datasets::{random_walk_clusters, OpenDataset, RandomWalkConfig};

const MIN_PTS: usize = 100;

fn main() {
    let args = parse_args();
    let n = ((2_000_000f64 * args.scale) as usize).max(2_000);
    let stopwatch = Stopwatch::with_budget(Duration::from_secs_f64(args.budget_secs));
    let per_run_cap = args.budget_secs / 8.0;

    println!("Fig. 7: runtime vs radius eps (d=8 synthetic, n={n}, MinPts={MIN_PTS})");
    print!("{:>9}", "eps");
    for algo in Algorithm::efficiency_suite(10) {
        print!(" {:>11}", algo.name());
    }
    println!();

    let ds = random_walk_clusters(&RandomWalkConfig::paper_default(n, 8), args.seed);
    let mut timed_out: HashSet<String> = HashSet::new();
    for eps in [5_000.0, 15_000.0, 25_000.0, 35_000.0, 45_000.0, 55_000.0] {
        if stopwatch.exhausted() {
            println!("{eps:>9}  (budget exhausted)");
            continue;
        }
        print!("{eps:>9}");
        for algo in Algorithm::efficiency_suite(10) {
            let name = algo.name();
            if timed_out.contains(&name) {
                print!(" {:>11}", fmt_secs(Some(f64::INFINITY)));
                continue;
            }
            let out = run_algorithm(algo, &ds.points, eps, MIN_PTS, args.seed);
            if out.seconds > per_run_cap {
                timed_out.insert(name);
            }
            print!(" {:>11}", fmt_secs(Some(out.seconds)));
        }
        println!();
    }

    // ---- Fig. 7d flavor: a real-ish dataset where the domain dwarfs ε.
    println!();
    let standin = OpenDataset::CorelImage.generate_scaled(args.scale.min(0.25), args.seed);
    let base_eps = standin.suggested.eps;
    println!(
        "Fig. 7d: runtime vs eps on {} stand-in (n={}, d={})",
        standin.name,
        standin.dataset.len(),
        standin.dataset.dims()
    );
    print!("{:>9}", "eps/e0");
    for algo in Algorithm::efficiency_suite(10) {
        print!(" {:>11}", algo.name());
    }
    println!();
    let mut timed_out: HashSet<String> = HashSet::new();
    for factor in [1.0, 2.0, 4.0] {
        if stopwatch.exhausted() {
            println!("{factor:>9}  (budget exhausted)");
            continue;
        }
        print!("{factor:>9}");
        for algo in Algorithm::efficiency_suite(10) {
            let name = algo.name();
            if timed_out.contains(&name) {
                print!(" {:>11}", fmt_secs(Some(f64::INFINITY)));
                continue;
            }
            let out = run_algorithm(
                algo,
                &standin.dataset.points,
                base_eps * factor,
                standin.suggested.min_pts,
                args.seed,
            );
            if out.seconds > per_run_cap {
                timed_out.insert(name);
            }
            print!(" {:>11}", fmt_secs(Some(out.seconds)));
        }
        println!();
    }
    println!(
        "paper shape: DBSVEC speeds up with eps; DBSCAN/LSH slow down; grids flood on real data"
    );
}
