//! Fig. 8 — effect of the penalty factor ν on DBSVEC's runtime.
//!
//! ν lower-bounds the support-vector fraction, so larger ν means more
//! range queries per expansion round: runtime should increase
//! monotonically, reaching DBSCAN-like behaviour as ν → 1 (§IV-C). The
//! harness also prints the support-vector counts so the mechanism is
//! visible, not just the trend.

use dbsvec_bench::harness::time;
use dbsvec_bench::parse_args;
use dbsvec_core::{Dbsvec, DbsvecConfig};
use dbsvec_datasets::{random_walk_clusters, RandomWalkConfig};
use dbsvec_index::RStarTree;

fn main() {
    let args = parse_args();
    let n = ((2_000_000f64 * args.scale) as usize).max(2_000);
    let (eps, min_pts) = (5000.0, 100);
    let ds = random_walk_clusters(&RandomWalkConfig::paper_default(n, 8), args.seed);
    let index = RStarTree::build(&ds.points);

    println!("Fig. 8: effect of penalty factor nu (d=8 synthetic, n={n})");
    println!(
        "{:>10} {:>10} {:>12} {:>12} {:>10}",
        "nu", "time", "sup.vectors", "range_q", "clusters"
    );

    for nu in [0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.4] {
        let (result, secs) = time(|| {
            Dbsvec::new(DbsvecConfig::new(eps, min_pts).with_nu(nu))
                .fit_with_index(&ds.points, &index)
        });
        println!(
            "{:>10} {:>9.3}s {:>12} {:>12} {:>10}",
            nu,
            secs,
            result.stats().support_vectors,
            result.stats().range_queries,
            result.num_clusters()
        );
    }

    // The adaptive ν* for reference.
    let (result, secs) =
        time(|| Dbsvec::new(DbsvecConfig::new(eps, min_pts)).fit_with_index(&ds.points, &index));
    println!(
        "{:>10} {:>9.3}s {:>12} {:>12} {:>10}",
        "nu*",
        secs,
        result.stats().support_vectors,
        result.stats().range_queries,
        result.num_clusters()
    );
    println!();
    println!("paper shape: runtime grows with nu (more SVs => more range queries)");
}
