//! Fig. 6 — scalability of every algorithm.
//!
//! Subcommands (pass as a free argument; default runs all three):
//!
//! * `cardinality` — runtime vs n on 8-d synthetic data (paper Fig. 6a:
//!   100k…10M; scaled by `--scale`),
//! * `dimensionality` — runtime vs d at fixed n (paper §V-C.2: d = 2…24,
//!   n = 2M scaled; ρ-approximate deteriorates rapidly, as in the paper),
//! * `realworld` — runtime on the PAMAP2 / Sensors / Corel-Image stand-ins
//!   (paper Fig. 6b),
//! * `smo` — DBSVEC alone, warm-started solver (the default) against
//!   `cold_start()` on the Fig. 6a workloads; labels are asserted
//!   identical and total SMO iterations strictly fewer, with the results
//!   in `BENCH_fit_smo.json`.
//!
//! Algorithms that exceed the per-run share of `--budget-secs` are skipped
//! at larger workloads and printed as `timeout`, mirroring the paper's
//! 10-hour rule.
//!
//! Passing `--threads N` switches to the **parallel-fit sweep** instead:
//! DBSVEC alone, at thread counts 1, 2, 4, … up to N, on one d=8 workload.
//! Labels are asserted identical to the single-threaded baseline and the
//! per-phase speedups land in `BENCH_fit_parallel.json`.

use std::collections::HashSet;
use std::time::Duration;

use dbsvec_bench::harness::{fmt_secs, Stopwatch};
use dbsvec_bench::{
    parse_args, run_algorithm_profiled, run_dbsvec_config_profiled, run_dbsvec_threads_profiled,
    Algorithm, BenchArgs, JsonReport, RunOutcome,
};
use dbsvec_core::DbsvecConfig;
use dbsvec_datasets::{random_walk_clusters, OpenDataset, RandomWalkConfig};
use dbsvec_geometry::PointSet;
use dbsvec_obs::{Json, Phase};

const EPS: f64 = 5000.0;
const MIN_PTS: usize = 100;

fn main() {
    let args = parse_args();
    if let Some(threads) = args.threads {
        fit_parallel(&args, threads);
        return;
    }
    let which = args.free.first().map(String::as_str).unwrap_or("all");
    if which == "smo" {
        fit_smo(&args);
        return;
    }
    let mut report = JsonReport::new("fig6_scalability");
    match which {
        "cardinality" => cardinality(&args, &mut report),
        "dimensionality" => dimensionality(&args, &mut report),
        "realworld" => realworld(&args, &mut report),
        "all" => {
            cardinality(&args, &mut report);
            println!();
            dimensionality(&args, &mut report);
            println!();
            realworld(&args, &mut report);
        }
        other => {
            eprintln!(
                "unknown subcommand {other}; use cardinality|dimensionality|realworld|smo|all"
            );
            std::process::exit(2);
        }
    }
    report.write_if_requested(&args);
}

/// Self time of the support-vector-expansion phase (excludes the nested
/// SVDD trainings), the stage the batched range queries accelerate.
fn expansion_self_secs(outcome: &RunOutcome) -> f64 {
    outcome
        .phases
        .iter()
        .find(|(p, _)| *p == Phase::SvExpand)
        .map(|(_, t)| t.self_time.as_secs_f64())
        .unwrap_or(0.0)
}

/// The parallel-fit sweep (`--threads N`): DBSVEC alone at 1, 2, 4, … N
/// worker threads on one d=8 random-walk workload, asserting that every
/// thread count reproduces the single-threaded labels and stats exactly.
/// Writes `BENCH_fit_parallel.json` when `--json DIR` is given.
fn fit_parallel(args: &BenchArgs, max_threads: usize) {
    let max_threads = max_threads.max(1);
    let n = ((500_000f64 * args.scale) as usize).max(2_000);
    let hardware = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    println!(
        "Parallel fit: DBSVEC runtime vs threads (n={n}, d=8, eps={EPS}, MinPts={MIN_PTS}, \
         {hardware} hardware threads)"
    );
    let ds = random_walk_clusters(&RandomWalkConfig::paper_default(n, 8), args.seed);

    let mut counts = vec![1usize];
    let mut t = 2;
    while t < max_threads {
        counts.push(t);
        t *= 2;
    }
    if max_threads > 1 {
        counts.push(max_threads);
    }

    let mut report = JsonReport::new("fit_parallel");
    let mut baseline: Option<RunOutcome> = None;
    println!(
        "{:>8} {:>11} {:>14} {:>11} {:>15}",
        "threads", "total", "speedup_vs_1", "expansion", "expansion_spdup"
    );
    for &threads in &counts {
        let out = run_dbsvec_threads_profiled(&ds.points, EPS, MIN_PTS, threads);
        let (base_secs, base_expand) = match &baseline {
            Some(base) => {
                assert_eq!(
                    base.clustering, out.clustering,
                    "threads={threads} changed the labels"
                );
                assert_eq!(
                    base.counts, out.counts,
                    "threads={threads} changed the replayed counters"
                );
                (base.seconds, expansion_self_secs(base))
            }
            None => (out.seconds, expansion_self_secs(&out)),
        };
        let expand = expansion_self_secs(&out);
        let speedup = if out.seconds > 0.0 {
            base_secs / out.seconds
        } else {
            1.0
        };
        let expansion_speedup = if expand > 0.0 {
            base_expand / expand
        } else {
            1.0
        };
        println!(
            "{threads:>8} {:>11} {speedup:>14.2} {:>11} {expansion_speedup:>15.2}",
            fmt_secs(Some(out.seconds)),
            fmt_secs(Some(expand)),
        );
        let mut extras = vec![
            ("threads".to_string(), Json::UInt(threads as u64)),
            ("hardware_threads".to_string(), Json::UInt(hardware as u64)),
            ("speedup_vs_1".to_string(), Json::Num(speedup)),
            ("expansion_self_secs".to_string(), Json::Num(expand)),
            (
                "expansion_speedup_vs_1".to_string(),
                Json::Num(expansion_speedup),
            ),
        ];
        if hardware == 1 {
            extras.push((
                "note".to_string(),
                Json::str(
                    "single hardware thread: worker threads time-slice one core, so wall-clock \
                     speedup is not expected; this sweep verifies determinism and records the \
                     parallel path's overhead instead",
                ),
            ));
        }
        report.push_with_extras("fit_parallel", threads as f64, &out, extras);
        if baseline.is_none() {
            baseline = Some(out);
        }
    }
    if hardware == 1 {
        println!("note: single hardware thread — speedup not expected; sweep verifies determinism");
    } else {
        println!("paper shape: expansion self-time shrinks toward 1/threads until memory-bound");
    }
    report.write_if_requested(args);
}

/// The warm-vs-cold SMO sweep (`smo` subcommand): DBSVEC with the default
/// warm-started, shrinking solver against [`DbsvecConfig::cold_start`] on
/// the Fig. 6a cardinality workloads. Labels must match exactly at every
/// size, and the warm solver must spend strictly fewer total SMO
/// iterations. Writes `BENCH_fit_smo.json`.
fn fit_smo(args: &BenchArgs) {
    let hardware = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    println!(
        "Warm vs cold SMO: DBSVEC solver ablation (d=8, eps={EPS}, MinPts={MIN_PTS}, scale={}, \
         {hardware} hardware threads)",
        args.scale
    );
    let mut sizes: Vec<usize> = [100_000usize, 200_000, 500_000]
        .iter()
        .map(|&n| ((n as f64 * args.scale) as usize).max(2_000))
        .collect();
    sizes.dedup();

    let mut report = JsonReport::new("fit_smo");
    let (mut warm_total, mut cold_total) = (0u64, 0u64);
    let (mut warm_secs, mut cold_secs) = (0.0f64, 0.0f64);
    println!(
        "{:>10} {:>6} {:>12} {:>11} {:>10} {:>10} {:>10}",
        "n", "mode", "smo_iters", "total", "warm_fits", "shrunk", "exhausted"
    );
    for &n in &sizes {
        let ds = random_walk_clusters(&RandomWalkConfig::paper_default(n, 8), args.seed);
        let warm = run_dbsvec_config_profiled(&ds.points, DbsvecConfig::new(EPS, MIN_PTS));
        let cold =
            run_dbsvec_config_profiled(&ds.points, DbsvecConfig::new(EPS, MIN_PTS).cold_start());
        assert_eq!(
            warm.clustering, cold.clustering,
            "n={n}: warm-start + shrinking changed the labels"
        );
        assert_eq!(
            cold.counts.warm_started_trainings, 0,
            "n={n}: cold_start() must never warm-start"
        );
        warm_total += warm.counts.smo_iterations;
        cold_total += cold.counts.smo_iterations;
        warm_secs += warm.seconds;
        cold_secs += cold.seconds;
        for (mode, out) in [("warm", &warm), ("cold", &cold)] {
            println!(
                "{n:>10} {mode:>6} {:>12} {:>11} {:>10} {:>10} {:>10}",
                out.counts.smo_iterations,
                fmt_secs(Some(out.seconds)),
                out.counts.warm_started_trainings,
                out.counts.shrunk_variables,
                out.counts.iterations_exhausted,
            );
            let mut extras = vec![
                ("mode".to_string(), Json::str(mode)),
                ("hardware_threads".to_string(), Json::UInt(hardware as u64)),
            ];
            if hardware == 1 {
                extras.push((
                    "note".to_string(),
                    Json::str(
                        "single hardware thread: iteration counts are the load-bearing \
                         comparison; wall-clock moves with them but carries scheduler noise",
                    ),
                ));
            }
            report.push_with_extras("fit_smo", n as f64, out, extras);
        }
    }
    assert!(
        warm_total < cold_total,
        "warm-start must save SMO iterations: warm={warm_total} cold={cold_total}"
    );
    let saved = 100.0 * (cold_total - warm_total) as f64 / cold_total as f64;
    println!(
        "total SMO iterations: warm={warm_total} cold={cold_total} ({saved:.1}% saved); \
         wall-clock warm={} cold={}",
        fmt_secs(Some(warm_secs)),
        fmt_secs(Some(cold_secs)),
    );
    report.write_if_requested(args);
}

/// Runs the full suite over one dataset, skipping algorithms that already
/// blew the per-run cap at a smaller workload.
#[allow(clippy::too_many_arguments)]
fn run_suite(
    points: &PointSet,
    eps: f64,
    min_pts: usize,
    seed: u64,
    timed_out: &mut HashSet<String>,
    per_run_cap: f64,
    report: &mut JsonReport,
    group: &str,
    x: f64,
) -> Vec<(String, Option<f64>)> {
    let mut rows = Vec::new();
    for algo in Algorithm::efficiency_suite(10) {
        let name = algo.name();
        if timed_out.contains(&name) {
            report.push_skipped(group, x, &name, "timeout");
            rows.push((name, Some(f64::INFINITY)));
            continue;
        }
        let out = run_algorithm_profiled(algo, points, eps, min_pts, seed);
        if out.seconds > per_run_cap {
            timed_out.insert(name.clone());
        }
        report.push(group, x, &out);
        rows.push((name, Some(out.seconds)));
    }
    rows
}

fn header(label: &str) {
    print!("{label:>12}");
    for algo in Algorithm::efficiency_suite(10) {
        print!(" {:>11}", algo.name());
    }
    println!();
}

fn cardinality(args: &BenchArgs, report: &mut JsonReport) {
    println!(
        "Fig. 6a: runtime vs cardinality (d=8 synthetic, eps={EPS}, MinPts={MIN_PTS}, scale={})",
        args.scale
    );
    let mut sizes: Vec<usize> = [
        100_000usize,
        200_000,
        500_000,
        1_000_000,
        2_000_000,
        5_000_000,
        10_000_000,
    ]
    .iter()
    .map(|&n| ((n as f64 * args.scale) as usize).max(2_000))
    .collect();
    sizes.dedup();
    let stopwatch = Stopwatch::with_budget(Duration::from_secs_f64(args.budget_secs));
    let per_run_cap = args.budget_secs / 8.0;
    let mut timed_out = HashSet::new();

    header("n");
    for &n in &sizes {
        if stopwatch.exhausted() {
            println!("{n:>12}  (budget exhausted)");
            continue;
        }
        let ds = random_walk_clusters(&RandomWalkConfig::paper_default(n, 8), args.seed);
        let rows = run_suite(
            &ds.points,
            EPS,
            MIN_PTS,
            args.seed,
            &mut timed_out,
            per_run_cap,
            report,
            "cardinality",
            n as f64,
        );
        print!("{n:>12}");
        for (_, secs) in rows {
            print!(" {:>11}", fmt_secs(secs));
        }
        println!();
    }
    println!("paper shape: DBSVEC grows ~linearly and stays fastest; R/kd-DBSCAN blow up first");
}

fn dimensionality(args: &BenchArgs, report: &mut JsonReport) {
    let n = ((2_000_000f64 * args.scale) as usize).max(2_000);
    println!("Fig. 6 (dimensionality): runtime vs d (n={n}, eps={EPS}, MinPts={MIN_PTS})");
    let stopwatch = Stopwatch::with_budget(Duration::from_secs_f64(args.budget_secs));
    let per_run_cap = args.budget_secs / 8.0;
    let mut timed_out = HashSet::new();

    header("d");
    for d in [2usize, 4, 8, 16, 24] {
        if stopwatch.exhausted() {
            println!("{d:>12}  (budget exhausted)");
            continue;
        }
        let ds = random_walk_clusters(&RandomWalkConfig::paper_default(n, d), args.seed);
        let rows = run_suite(
            &ds.points,
            EPS,
            MIN_PTS,
            args.seed,
            &mut timed_out,
            per_run_cap,
            report,
            "dimensionality",
            d as f64,
        );
        print!("{d:>12}");
        for (_, secs) in rows {
            print!(" {:>11}", fmt_secs(secs));
        }
        println!();
    }
    println!("paper shape: rho-Appr deteriorates rapidly with d; DBSVEC grows ~linearly");
}

fn realworld(args: &BenchArgs, report: &mut JsonReport) {
    // The paper's protocol (§V-C): coordinates normalized to [0, 10^5],
    // eps = 5000 and MinPts = 100 by default. MinPts shrinks with the
    // subsampling scale so the density threshold stays proportionate.
    let min_pts = ((MIN_PTS as f64 * args.scale).round() as usize).clamp(10, MIN_PTS);
    println!(
        "Fig. 6b: runtime on real-world dataset stand-ins (scale={}, eps={EPS}, MinPts={min_pts})",
        args.scale
    );
    let stopwatch = Stopwatch::with_budget(Duration::from_secs_f64(args.budget_secs));
    let per_run_cap = args.budget_secs / 8.0;
    let mut timed_out = HashSet::new();

    header("dataset");
    for dataset in OpenDataset::realworld() {
        if stopwatch.exhausted() {
            println!("{:>12}  (budget exhausted)", dataset.name());
            continue;
        }
        let standin = dataset.generate_scaled(args.scale, args.seed);
        let rows = run_suite(
            &standin.dataset.points,
            EPS,
            min_pts,
            args.seed,
            &mut timed_out,
            per_run_cap,
            report,
            "realworld",
            standin.dataset.points.len() as f64,
        );
        print!("{:>12}", standin.name);
        for (_, secs) in rows {
            print!(" {:>11}", fmt_secs(secs));
        }
        println!();
    }
    println!("paper shape: DBSVEC fastest on all three; rho-Appr suffers on high-d Corel-Image");
}
