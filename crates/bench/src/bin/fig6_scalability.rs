//! Fig. 6 — scalability of every algorithm.
//!
//! Subcommands (pass as a free argument; default runs all three):
//!
//! * `cardinality` — runtime vs n on 8-d synthetic data (paper Fig. 6a:
//!   100k…10M; scaled by `--scale`),
//! * `dimensionality` — runtime vs d at fixed n (paper §V-C.2: d = 2…24,
//!   n = 2M scaled; ρ-approximate deteriorates rapidly, as in the paper),
//! * `realworld` — runtime on the PAMAP2 / Sensors / Corel-Image stand-ins
//!   (paper Fig. 6b),
//! * `smo` — DBSVEC alone, warm-started solver (the default) against
//!   `cold_start()` on the Fig. 6a workloads; labels are asserted
//!   identical and total SMO iterations strictly fewer, with the results
//!   in `BENCH_fit_smo.json`.
//! * `sampled` — sampled core discovery (DBSCAN++-style uniform candidate
//!   draw) swept up to n = 10⁶, with exact fits at the overlap sizes for
//!   an `ari_vs_exact` quality gate and a fitted log-log scaling slope
//!   over the top decade, in `BENCH_fit_sampled.json`. Under
//!   `MICROBENCH_ENFORCE=1` the sweep asserts slope ≤ 1.15 and
//!   ARI ≥ 0.95 at every overlap size.
//!
//! Algorithms that exceed the per-run share of `--budget-secs` are skipped
//! at larger workloads and printed as `timeout`, mirroring the paper's
//! 10-hour rule.
//!
//! Passing `--threads N` switches to the **parallel-fit sweep** instead:
//! DBSVEC alone, at thread counts 1, 2, 4, … up to N, on one d=8 workload.
//! Labels are asserted identical to the single-threaded baseline and the
//! per-phase speedups land in `BENCH_fit_parallel.json`.

use std::collections::HashSet;
use std::time::Duration;

use dbsvec_bench::harness::{fmt_secs, Stopwatch};
use dbsvec_bench::{
    parse_args, run_algorithm_profiled, run_dbsvec_config_profiled, run_dbsvec_threads_profiled,
    Algorithm, BenchArgs, JsonReport, RunOutcome,
};
use dbsvec_core::DbsvecConfig;
use dbsvec_datasets::{random_walk_clusters, OpenDataset, RandomWalkConfig, RandomWalkStream};
use dbsvec_geometry::PointSet;
use dbsvec_metrics::adjusted_rand_index;
use dbsvec_obs::{Json, Phase};

const EPS: f64 = 5000.0;
const MIN_PTS: usize = 100;

fn main() {
    let args = parse_args();
    if let Some(threads) = args.threads {
        fit_parallel(&args, threads);
        return;
    }
    let which = args.free.first().map(String::as_str).unwrap_or("all");
    if which == "smo" {
        fit_smo(&args);
        return;
    }
    if which == "sampled" {
        fit_sampled(&args);
        return;
    }
    let mut report = JsonReport::new("fig6_scalability");
    match which {
        "cardinality" => cardinality(&args, &mut report),
        "dimensionality" => dimensionality(&args, &mut report),
        "realworld" => realworld(&args, &mut report),
        "all" => {
            cardinality(&args, &mut report);
            println!();
            dimensionality(&args, &mut report);
            println!();
            realworld(&args, &mut report);
        }
        other => {
            eprintln!(
                "unknown subcommand {other}; use cardinality|dimensionality|realworld|smo|sampled|all"
            );
            std::process::exit(2);
        }
    }
    report.write_if_requested(&args);
}

/// Self time of the support-vector-expansion phase (excludes the nested
/// SVDD trainings), the stage the batched range queries accelerate.
fn expansion_self_secs(outcome: &RunOutcome) -> f64 {
    outcome
        .phases
        .iter()
        .find(|(p, _)| *p == Phase::SvExpand)
        .map(|(_, t)| t.self_time.as_secs_f64())
        .unwrap_or(0.0)
}

/// The parallel-fit sweep (`--threads N`): DBSVEC alone at 1, 2, 4, … N
/// worker threads on one d=8 random-walk workload, asserting that every
/// thread count reproduces the single-threaded labels and stats exactly.
/// Writes `BENCH_fit_parallel.json` when `--json DIR` is given.
fn fit_parallel(args: &BenchArgs, max_threads: usize) {
    let max_threads = max_threads.max(1);
    let n = ((500_000f64 * args.scale) as usize).max(2_000);
    let hardware = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    println!(
        "Parallel fit: DBSVEC runtime vs threads (n={n}, d=8, eps={EPS}, MinPts={MIN_PTS}, \
         {hardware} hardware threads)"
    );
    let ds = random_walk_clusters(&RandomWalkConfig::paper_default(n, 8), args.seed);

    let mut counts = vec![1usize];
    let mut t = 2;
    while t < max_threads {
        counts.push(t);
        t *= 2;
    }
    if max_threads > 1 {
        counts.push(max_threads);
    }

    let mut report = JsonReport::new("fit_parallel");
    let mut baseline: Option<RunOutcome> = None;
    println!(
        "{:>8} {:>11} {:>14} {:>11} {:>15}",
        "threads", "total", "speedup_vs_1", "expansion", "expansion_spdup"
    );
    for &threads in &counts {
        let out = run_dbsvec_threads_profiled(&ds.points, EPS, MIN_PTS, threads);
        let (base_secs, base_expand) = match &baseline {
            Some(base) => {
                assert_eq!(
                    base.clustering, out.clustering,
                    "threads={threads} changed the labels"
                );
                assert_eq!(
                    base.counts, out.counts,
                    "threads={threads} changed the replayed counters"
                );
                (base.seconds, expansion_self_secs(base))
            }
            None => (out.seconds, expansion_self_secs(&out)),
        };
        let expand = expansion_self_secs(&out);
        let speedup = if out.seconds > 0.0 {
            base_secs / out.seconds
        } else {
            1.0
        };
        let expansion_speedup = if expand > 0.0 {
            base_expand / expand
        } else {
            1.0
        };
        println!(
            "{threads:>8} {:>11} {speedup:>14.2} {:>11} {expansion_speedup:>15.2}",
            fmt_secs(Some(out.seconds)),
            fmt_secs(Some(expand)),
        );
        let mut extras = vec![
            ("threads".to_string(), Json::UInt(threads as u64)),
            ("hardware_threads".to_string(), Json::UInt(hardware as u64)),
            ("speedup_vs_1".to_string(), Json::Num(speedup)),
            ("expansion_self_secs".to_string(), Json::Num(expand)),
            (
                "expansion_speedup_vs_1".to_string(),
                Json::Num(expansion_speedup),
            ),
        ];
        if hardware == 1 {
            extras.push((
                "note".to_string(),
                Json::str(
                    "single hardware thread: worker threads time-slice one core, so wall-clock \
                     speedup is not expected; this sweep verifies determinism and records the \
                     parallel path's overhead instead",
                ),
            ));
        }
        report.push_with_extras("fit_parallel", threads as f64, &out, extras);
        if baseline.is_none() {
            baseline = Some(out);
        }
    }
    if hardware == 1 {
        println!("note: single hardware thread — speedup not expected; sweep verifies determinism");
    } else {
        println!("paper shape: expansion self-time shrinks toward 1/threads until memory-bound");
    }
    report.write_if_requested(args);
}

/// The warm-vs-cold SMO sweep (`smo` subcommand): DBSVEC with the default
/// warm-started, shrinking solver against [`DbsvecConfig::cold_start`] on
/// the Fig. 6a cardinality workloads. Labels must match exactly at every
/// size, and the warm solver must spend strictly fewer total SMO
/// iterations. Writes `BENCH_fit_smo.json`.
fn fit_smo(args: &BenchArgs) {
    let hardware = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    println!(
        "Warm vs cold SMO: DBSVEC solver ablation (d=8, eps={EPS}, MinPts={MIN_PTS}, scale={}, \
         {hardware} hardware threads)",
        args.scale
    );
    let mut sizes: Vec<usize> = [100_000usize, 200_000, 500_000]
        .iter()
        .map(|&n| ((n as f64 * args.scale) as usize).max(2_000))
        .collect();
    sizes.dedup();

    let mut report = JsonReport::new("fit_smo");
    let (mut warm_total, mut cold_total) = (0u64, 0u64);
    let (mut warm_secs, mut cold_secs) = (0.0f64, 0.0f64);
    println!(
        "{:>10} {:>6} {:>12} {:>11} {:>10} {:>10} {:>10}",
        "n", "mode", "smo_iters", "total", "warm_fits", "shrunk", "exhausted"
    );
    for &n in &sizes {
        let ds = random_walk_clusters(&RandomWalkConfig::paper_default(n, 8), args.seed);
        let warm = run_dbsvec_config_profiled(&ds.points, DbsvecConfig::new(EPS, MIN_PTS));
        let cold =
            run_dbsvec_config_profiled(&ds.points, DbsvecConfig::new(EPS, MIN_PTS).cold_start());
        assert_eq!(
            warm.clustering, cold.clustering,
            "n={n}: warm-start + shrinking changed the labels"
        );
        assert_eq!(
            cold.counts.warm_started_trainings, 0,
            "n={n}: cold_start() must never warm-start"
        );
        warm_total += warm.counts.smo_iterations;
        cold_total += cold.counts.smo_iterations;
        warm_secs += warm.seconds;
        cold_secs += cold.seconds;
        for (mode, out) in [("warm", &warm), ("cold", &cold)] {
            println!(
                "{n:>10} {mode:>6} {:>12} {:>11} {:>10} {:>10} {:>10}",
                out.counts.smo_iterations,
                fmt_secs(Some(out.seconds)),
                out.counts.warm_started_trainings,
                out.counts.shrunk_variables,
                out.counts.iterations_exhausted,
            );
            let mut extras = vec![
                ("mode".to_string(), Json::str(mode)),
                ("hardware_threads".to_string(), Json::UInt(hardware as u64)),
            ];
            if hardware == 1 {
                extras.push((
                    "note".to_string(),
                    Json::str(
                        "single hardware thread: iteration counts are the load-bearing \
                         comparison; wall-clock moves with them but carries scheduler noise",
                    ),
                ));
            }
            report.push_with_extras("fit_smo", n as f64, out, extras);
        }
    }
    assert!(
        warm_total < cold_total,
        "warm-start must save SMO iterations: warm={warm_total} cold={cold_total}"
    );
    let saved = 100.0 * (cold_total - warm_total) as f64 / cold_total as f64;
    println!(
        "total SMO iterations: warm={warm_total} cold={cold_total} ({saved:.1}% saved); \
         wall-clock warm={} cold={}",
        fmt_secs(Some(warm_secs)),
        fmt_secs(Some(cold_secs)),
    );
    report.write_if_requested(args);
}

/// Uniform candidate rate for the sampled sweep. DBSCAN++'s regime: a
/// 12.5% draw keeps ≈ 78 candidates in every ε-ball of the default
/// workload (occupancy ≈ 625), far above what core recovery needs, while
/// cutting seeding and the θ sweep by 8×.
const SAMPLE_RATE: f64 = 0.125;

/// Largest size at which the sweep also runs the exact fit for the
/// ARI-vs-exact gate; beyond it the exact fit is the cost wall the
/// sampled mode exists to avoid.
const EXACT_OVERLAP_CAP: usize = 100_000;

/// Least-squares slope of ln(seconds) against ln(n).
fn log_log_slope(rows: &[(usize, f64)]) -> f64 {
    let k = rows.len() as f64;
    let xs: Vec<f64> = rows.iter().map(|(n, _)| (*n as f64).ln()).collect();
    let ys: Vec<f64> = rows.iter().map(|(_, s)| s.max(1e-9).ln()).collect();
    let mx = xs.iter().sum::<f64>() / k;
    let my = ys.iter().sum::<f64>() / k;
    let cov: f64 = xs.iter().zip(&ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let var: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    if var > 0.0 {
        cov / var
    } else {
        0.0
    }
}

/// The sampled-core-discovery sweep (`sampled` subcommand): DBSVEC with a
/// uniform candidate draw on the Fig. 6a workload shape, swept up to
/// n = 10⁶ (scaled). Exact fits run alongside at the overlap sizes
/// (n ≤ 10⁵) to score `ari_vs_exact`; the top decade of sampled runs is
/// fitted for a log-log scaling slope. Writes `BENCH_fit_sampled.json`;
/// `MICROBENCH_ENFORCE=1` turns the quality gate into assertions.
fn fit_sampled(args: &BenchArgs) {
    let enforce = std::env::var_os("MICROBENCH_ENFORCE").is_some_and(|v| v == "1");
    let hardware = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    println!(
        "Sampled core discovery: DBSVEC with a uniform {SAMPLE_RATE} candidate draw \
         (d=8, eps={EPS}, MinPts={MIN_PTS}, scale={}, seed={}, {hardware} hardware threads)",
        args.scale, args.seed
    );
    let mut sizes: Vec<usize> = [10_000usize, 31_623, 100_000, 316_228, 1_000_000]
        .iter()
        .map(|&n| ((n as f64 * args.scale) as usize).max(2_000))
        .collect();
    sizes.dedup();

    let mut report = JsonReport::new("fit_sampled");
    let mut sampled_rows: Vec<(usize, f64)> = Vec::new();
    let mut aris: Vec<(usize, f64)> = Vec::new();
    let max_n = *sizes.last().expect("at least one size");
    println!(
        "{:>10} {:>11} {:>12} {:>10} {:>11} {:>8}",
        "n", "sampled", "candidates", "attached", "exact", "ari"
    );
    for &n in &sizes {
        // Stream the workload straight into a PointSet: O(walkers · d)
        // generator state, no side truth vector.
        let points = RandomWalkStream::new(&RandomWalkConfig::paper_default(n, 8), args.seed)
            .collect_points();
        let sampled = run_dbsvec_config_profiled(
            &points,
            DbsvecConfig::new(EPS, MIN_PTS)
                .with_uniform_sampling(SAMPLE_RATE, args.seed)
                .with_threads(0),
        );
        sampled_rows.push((n, sampled.seconds));

        let mut extras = vec![
            ("mode".to_string(), Json::str("sampled")),
            ("sample_rate".to_string(), Json::Num(SAMPLE_RATE)),
            ("sample_seed".to_string(), Json::UInt(args.seed)),
            ("hardware_threads".to_string(), Json::UInt(hardware as u64)),
        ];
        let exact = if n <= EXACT_OVERLAP_CAP {
            let exact = run_dbsvec_config_profiled(
                &points,
                DbsvecConfig::new(EPS, MIN_PTS).with_threads(0),
            );
            let ari = adjusted_rand_index(
                exact.clustering.assignments(),
                sampled.clustering.assignments(),
            );
            aris.push((n, ari));
            extras.push(("ari_vs_exact".to_string(), Json::Num(ari)));
            report.push_with_extras(
                "fit_sampled",
                n as f64,
                &exact,
                vec![
                    ("mode".to_string(), Json::str("exact")),
                    ("hardware_threads".to_string(), Json::UInt(hardware as u64)),
                ],
            );
            Some((exact.seconds, ari))
        } else {
            None
        };
        if n == max_n {
            // The acceptance gate: fitted slope over the top decade of
            // sampled runs (all sizes within 10x of the largest).
            let decade: Vec<(usize, f64)> = sampled_rows
                .iter()
                .copied()
                .filter(|(m, _)| m.saturating_mul(10) >= max_n)
                .collect();
            let slope = log_log_slope(if decade.len() >= 2 {
                &decade
            } else {
                &sampled_rows
            });
            extras.push(("scaling_slope".to_string(), Json::Num(slope)));
            extras.push(("slope_points".to_string(), Json::UInt(decade.len() as u64)));
        }
        report.push_with_extras("fit_sampled", n as f64, &sampled, extras);
        println!(
            "{n:>10} {:>11} {:>12} {:>10} {:>11} {:>8}",
            fmt_secs(Some(sampled.seconds)),
            sampled.counts.sampled_candidates,
            sampled.counts.attached_points,
            fmt_secs(exact.map(|(s, _)| s)),
            exact.map_or("-".to_string(), |(_, a)| format!("{a:.4}")),
        );
    }

    let decade: Vec<(usize, f64)> = sampled_rows
        .iter()
        .copied()
        .filter(|(m, _)| m.saturating_mul(10) >= max_n)
        .collect();
    let slope = log_log_slope(if decade.len() >= 2 {
        &decade
    } else {
        &sampled_rows
    });
    let min_ari = aris.iter().map(|(_, a)| *a).fold(f64::INFINITY, f64::min);
    println!(
        "scaling slope {slope:.3} over the top decade ({} sizes); worst ari_vs_exact {}",
        decade.len().max(sampled_rows.len().min(2)),
        if aris.is_empty() {
            "-".to_string()
        } else {
            format!("{min_ari:.4}")
        },
    );
    report.write_if_requested(args);
    if enforce {
        assert!(
            slope <= 1.15,
            "sampled fit must scale near-linearly: log-log slope {slope:.3} > 1.15"
        );
        for (n, ari) in &aris {
            assert!(
                *ari >= 0.95,
                "sampled fit must track the exact labels: ari_vs_exact {ari:.4} < 0.95 at n={n}"
            );
        }
        println!("MICROBENCH_ENFORCE: slope and ARI gates passed");
    }
    println!("paper shape: sampled DBSVEC stays ~linear past the exact fit's cost wall");
}

/// Runs the full suite over one dataset, skipping algorithms that already
/// blew the per-run cap at a smaller workload.
#[allow(clippy::too_many_arguments)]
fn run_suite(
    points: &PointSet,
    eps: f64,
    min_pts: usize,
    seed: u64,
    timed_out: &mut HashSet<String>,
    per_run_cap: f64,
    report: &mut JsonReport,
    group: &str,
    x: f64,
) -> Vec<(String, Option<f64>)> {
    let mut rows = Vec::new();
    for algo in Algorithm::efficiency_suite(10) {
        let name = algo.name();
        if timed_out.contains(&name) {
            report.push_skipped(group, x, &name, "timeout");
            rows.push((name, Some(f64::INFINITY)));
            continue;
        }
        let out = run_algorithm_profiled(algo, points, eps, min_pts, seed);
        if out.seconds > per_run_cap {
            timed_out.insert(name.clone());
        }
        report.push(group, x, &out);
        rows.push((name, Some(out.seconds)));
    }
    rows
}

fn header(label: &str) {
    print!("{label:>12}");
    for algo in Algorithm::efficiency_suite(10) {
        print!(" {:>11}", algo.name());
    }
    println!();
}

fn cardinality(args: &BenchArgs, report: &mut JsonReport) {
    println!(
        "Fig. 6a: runtime vs cardinality (d=8 synthetic, eps={EPS}, MinPts={MIN_PTS}, scale={})",
        args.scale
    );
    let mut sizes: Vec<usize> = [
        100_000usize,
        200_000,
        500_000,
        1_000_000,
        2_000_000,
        5_000_000,
        10_000_000,
    ]
    .iter()
    .map(|&n| ((n as f64 * args.scale) as usize).max(2_000))
    .collect();
    sizes.dedup();
    let stopwatch = Stopwatch::with_budget(Duration::from_secs_f64(args.budget_secs));
    let per_run_cap = args.budget_secs / 8.0;
    let mut timed_out = HashSet::new();

    header("n");
    for &n in &sizes {
        if stopwatch.exhausted() {
            println!("{n:>12}  (budget exhausted)");
            continue;
        }
        let ds = random_walk_clusters(&RandomWalkConfig::paper_default(n, 8), args.seed);
        let rows = run_suite(
            &ds.points,
            EPS,
            MIN_PTS,
            args.seed,
            &mut timed_out,
            per_run_cap,
            report,
            "cardinality",
            n as f64,
        );
        print!("{n:>12}");
        for (_, secs) in rows {
            print!(" {:>11}", fmt_secs(secs));
        }
        println!();
    }
    println!("paper shape: DBSVEC grows ~linearly and stays fastest; R/kd-DBSCAN blow up first");
}

fn dimensionality(args: &BenchArgs, report: &mut JsonReport) {
    let n = ((2_000_000f64 * args.scale) as usize).max(2_000);
    println!("Fig. 6 (dimensionality): runtime vs d (n={n}, eps={EPS}, MinPts={MIN_PTS})");
    let stopwatch = Stopwatch::with_budget(Duration::from_secs_f64(args.budget_secs));
    let per_run_cap = args.budget_secs / 8.0;
    let mut timed_out = HashSet::new();

    header("d");
    for d in [2usize, 4, 8, 16, 24] {
        if stopwatch.exhausted() {
            println!("{d:>12}  (budget exhausted)");
            continue;
        }
        let ds = random_walk_clusters(&RandomWalkConfig::paper_default(n, d), args.seed);
        let rows = run_suite(
            &ds.points,
            EPS,
            MIN_PTS,
            args.seed,
            &mut timed_out,
            per_run_cap,
            report,
            "dimensionality",
            d as f64,
        );
        print!("{d:>12}");
        for (_, secs) in rows {
            print!(" {:>11}", fmt_secs(secs));
        }
        println!();
    }
    println!("paper shape: rho-Appr deteriorates rapidly with d; DBSVEC grows ~linearly");
}

fn realworld(args: &BenchArgs, report: &mut JsonReport) {
    // The paper's protocol (§V-C): coordinates normalized to [0, 10^5],
    // eps = 5000 and MinPts = 100 by default. MinPts shrinks with the
    // subsampling scale so the density threshold stays proportionate.
    let min_pts = ((MIN_PTS as f64 * args.scale).round() as usize).clamp(10, MIN_PTS);
    println!(
        "Fig. 6b: runtime on real-world dataset stand-ins (scale={}, eps={EPS}, MinPts={min_pts})",
        args.scale
    );
    let stopwatch = Stopwatch::with_budget(Duration::from_secs_f64(args.budget_secs));
    let per_run_cap = args.budget_secs / 8.0;
    let mut timed_out = HashSet::new();

    header("dataset");
    for dataset in OpenDataset::realworld() {
        if stopwatch.exhausted() {
            println!("{:>12}  (budget exhausted)", dataset.name());
            continue;
        }
        let standin = dataset.generate_scaled(args.scale, args.seed);
        let rows = run_suite(
            &standin.dataset.points,
            EPS,
            min_pts,
            args.seed,
            &mut timed_out,
            per_run_cap,
            report,
            "realworld",
            standin.dataset.points.len() as f64,
        );
        print!("{:>12}", standin.name);
        for (_, secs) in rows {
            print!(" {:>11}", fmt_secs(secs));
        }
        println!();
    }
    println!("paper shape: DBSVEC fastest on all three; rho-Appr suffers on high-d Corel-Image");
}
