//! Table II — empirical validation of DBSVEC's O(θn) cost model.
//!
//! The paper's complexity table claims DBSVEC needs `O(θn)` time with
//! `θ = s + 1 + k + m + MinPts·l ≪ n` (§III-D), versus DBSCAN's `O(n²)`
//! (n range queries). This harness runs both over a counting index and
//! prints the θ decomposition so the claim is checkable on any workload.

use dbsvec_bench::harness::time;
use dbsvec_bench::parse_args;
use dbsvec_core::{Dbsvec, DbsvecConfig};
use dbsvec_datasets::{random_walk_clusters, RandomWalkConfig};
use dbsvec_index::RStarTree;

fn main() {
    let args = parse_args();
    let sizes: Vec<usize> = [100_000usize, 500_000, 2_000_000]
        .iter()
        .map(|&n| ((n as f64 * args.scale) as usize).max(5_000))
        .collect();

    println!("Table II: range-query counts validating theta << n (d=8 synthetic)");
    println!(
        "{:>9} {:>8} {:>8} {:>8} {:>8} {:>8} {:>10} {:>8} {:>10}",
        "n", "seeds", "svdd", "SVs", "merges", "noise_l", "queries", "theta", "DBSCAN_q"
    );

    for &n in &sizes {
        let ds = random_walk_clusters(&RandomWalkConfig::paper_default(n, 8), args.seed);
        let (eps, min_pts) = (5000.0, 100);
        let points = &ds.points;
        let index = RStarTree::build(points);

        let (result, _) =
            time(|| Dbsvec::new(DbsvecConfig::new(eps, min_pts)).fit_with_index(points, &index));
        let s = result.stats();
        println!(
            "{:>9} {:>8} {:>8} {:>8} {:>8} {:>8} {:>10} {:>8.4} {:>10}",
            n,
            s.seeds,
            s.svdd_trainings,
            s.support_vectors,
            s.merges,
            s.noise_candidates,
            s.range_queries,
            s.theta(n),
            n // DBSCAN issues exactly one query per point
        );
    }
    println!();
    println!("theta << 1 confirms the Table II claim: DBSVEC is O(theta n), DBSCAN O(n) queries");
}
