//! A tiny microbenchmark runner for the `benches/` targets.
//!
//! The workspace builds offline with no external dependencies, so this
//! replaces criterion with the minimum that matters here: warm up once,
//! time a handful of samples, print best/mean per row. Two modes:
//!
//! * **quick** (the default, and what `cargo test` exercises): shrunken
//!   workloads and few samples, so every bench target doubles as a smoke
//!   test that finishes in seconds;
//! * **full** (`--full` or `MICROBENCH_FULL=1`, e.g.
//!   `cargo bench --bench clustering -- --full`): the real workloads.

use std::time::Instant;

pub use std::hint::black_box;

/// Sample-count and workload-size policy for one bench binary.
#[derive(Clone, Copy, Debug)]
pub struct Runner {
    samples: usize,
    quick: bool,
}

impl Runner {
    /// Reads the mode from `--full` / `MICROBENCH_FULL` and prints a
    /// header line saying which mode is active.
    pub fn from_env(name: &str) -> Self {
        let full = std::env::var_os("MICROBENCH_FULL").is_some()
            || std::env::args().any(|a| a == "--full");
        let runner = Self {
            samples: if full { 10 } else { 2 },
            quick: !full,
        };
        println!(
            "microbench {name} [{} mode, {} samples/row]",
            if full { "full" } else { "quick" },
            runner.samples
        );
        runner
    }

    /// Picks a workload size: `full` normally, `quick` in quick mode.
    pub fn size(&self, full: usize, quick: usize) -> usize {
        if self.quick {
            quick
        } else {
            full
        }
    }

    /// Whether the shrunken quick mode is active.
    pub fn is_quick(&self) -> bool {
        self.quick
    }

    /// Times `f` (one warmup + `samples` timed calls), prints a row, and
    /// returns the best observed seconds.
    pub fn bench<T>(&self, name: &str, mut f: impl FnMut() -> T) -> f64 {
        black_box(f());
        let mut best = f64::INFINITY;
        let mut total = 0.0;
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            let secs = start.elapsed().as_secs_f64();
            best = best.min(secs);
            total += secs;
        }
        println!(
            "  {name:<44} best {:>12}  mean {:>12}",
            fmt_time(best),
            fmt_time(total / self.samples as f64)
        );
        best
    }

    /// Times two closures with **interleaved** samples (`a, b, a, b, …`
    /// after one warmup each), prints both rows, and returns the **mean**
    /// observed seconds for each. Use this for overhead-envelope
    /// comparisons, where both choices of [`Runner::bench`] would bias
    /// the delta: running all of `a`'s samples and then all of `b`'s lets
    /// clock-frequency and scheduler drift between the two rows
    /// masquerade as overhead, and comparing best-of order statistics
    /// compares two lucky tails — on a busy single-core box either
    /// effect alone regularly exceeds the ±2% envelopes being checked.
    /// Interleaving makes the drift land on both sides equally, and the
    /// paired means then estimate the true overhead with variance shrunk
    /// by the sample count.
    pub fn bench_pair<T, U>(
        &self,
        name_a: &str,
        name_b: &str,
        mut a: impl FnMut() -> T,
        mut b: impl FnMut() -> U,
    ) -> (f64, f64) {
        black_box(a());
        black_box(b());
        let (mut best_a, mut best_b) = (f64::INFINITY, f64::INFINITY);
        let (mut total_a, mut total_b) = (0.0, 0.0);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(a());
            let secs = start.elapsed().as_secs_f64();
            best_a = best_a.min(secs);
            total_a += secs;
            let start = Instant::now();
            black_box(b());
            let secs = start.elapsed().as_secs_f64();
            best_b = best_b.min(secs);
            total_b += secs;
        }
        for (name, best, total) in [(name_a, best_a, total_a), (name_b, best_b, total_b)] {
            println!(
                "  {name:<44} best {:>12}  mean {:>12}",
                fmt_time(best),
                fmt_time(total / self.samples as f64)
            );
        }
        let n = self.samples as f64;
        (total_a / n, total_b / n)
    }
}

/// Formats seconds with an adaptive unit.
pub fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3}s")
    } else if secs >= 1e-3 {
        format!("{:.3}ms", secs * 1e3)
    } else {
        format!("{:.1}us", secs * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_returns_best_sample() {
        let runner = Runner {
            samples: 3,
            quick: true,
        };
        let mut calls = 0;
        let best = runner.bench("noop", || calls += 1);
        assert_eq!(calls, 4); // 1 warmup + 3 samples
        assert!(best >= 0.0 && best.is_finite());
    }

    #[test]
    fn bench_pair_interleaves_samples() {
        let runner = Runner {
            samples: 4,
            quick: true,
        };
        // Record the call order: interleaving means after the two
        // warmups the sequence strictly alternates a, b, a, b, …
        let order = std::cell::RefCell::new(Vec::new());
        let (mean_a, mean_b) = runner.bench_pair(
            "pair_a",
            "pair_b",
            || order.borrow_mut().push('a'),
            || order.borrow_mut().push('b'),
        );
        // 1 warmup pair + 4 sample pairs, strictly alternating.
        assert_eq!(*order.borrow(), "ababababab".chars().collect::<Vec<_>>());
        assert!(mean_a >= 0.0 && mean_a.is_finite());
        assert!(mean_b >= 0.0 && mean_b.is_finite());
    }

    #[test]
    fn time_formatting_scales() {
        assert_eq!(fmt_time(2.5), "2.500s");
        assert_eq!(fmt_time(0.0125), "12.500ms");
        assert_eq!(fmt_time(42e-6), "42.0us");
    }
}
