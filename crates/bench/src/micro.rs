//! A tiny microbenchmark runner for the `benches/` targets.
//!
//! The workspace builds offline with no external dependencies, so this
//! replaces criterion with the minimum that matters here: warm up once,
//! time a handful of samples, print best/mean per row. Two modes:
//!
//! * **quick** (the default, and what `cargo test` exercises): shrunken
//!   workloads and few samples, so every bench target doubles as a smoke
//!   test that finishes in seconds;
//! * **full** (`--full` or `MICROBENCH_FULL=1`, e.g.
//!   `cargo bench --bench clustering -- --full`): the real workloads.

use std::time::Instant;

pub use std::hint::black_box;

/// Sample-count and workload-size policy for one bench binary.
#[derive(Clone, Copy, Debug)]
pub struct Runner {
    samples: usize,
    quick: bool,
}

impl Runner {
    /// Reads the mode from `--full` / `MICROBENCH_FULL` and prints a
    /// header line saying which mode is active.
    pub fn from_env(name: &str) -> Self {
        let full = std::env::var_os("MICROBENCH_FULL").is_some()
            || std::env::args().any(|a| a == "--full");
        let runner = Self {
            samples: if full { 10 } else { 2 },
            quick: !full,
        };
        println!(
            "microbench {name} [{} mode, {} samples/row]",
            if full { "full" } else { "quick" },
            runner.samples
        );
        runner
    }

    /// Picks a workload size: `full` normally, `quick` in quick mode.
    pub fn size(&self, full: usize, quick: usize) -> usize {
        if self.quick {
            quick
        } else {
            full
        }
    }

    /// Whether the shrunken quick mode is active.
    pub fn is_quick(&self) -> bool {
        self.quick
    }

    /// Times `f` (one warmup + `samples` timed calls), prints a row, and
    /// returns the best observed seconds.
    pub fn bench<T>(&self, name: &str, mut f: impl FnMut() -> T) -> f64 {
        black_box(f());
        let mut best = f64::INFINITY;
        let mut total = 0.0;
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            let secs = start.elapsed().as_secs_f64();
            best = best.min(secs);
            total += secs;
        }
        println!(
            "  {name:<44} best {:>12}  mean {:>12}",
            fmt_time(best),
            fmt_time(total / self.samples as f64)
        );
        best
    }
}

/// Formats seconds with an adaptive unit.
pub fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3}s")
    } else if secs >= 1e-3 {
        format!("{:.3}ms", secs * 1e3)
    } else {
        format!("{:.1}us", secs * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_returns_best_sample() {
        let runner = Runner {
            samples: 3,
            quick: true,
        };
        let mut calls = 0;
        let best = runner.bench("noop", || calls += 1);
        assert_eq!(calls, 4); // 1 warmup + 3 samples
        assert!(best >= 0.0 && best.is_finite());
    }

    #[test]
    fn time_formatting_scales() {
        assert_eq!(fmt_time(2.5), "2.500s");
        assert_eq!(fmt_time(0.0125), "12.500ms");
        assert_eq!(fmt_time(42e-6), "42.0us");
    }
}
