//! Shared experiment plumbing: timing, CLI parsing, table printing, and
//! the `BENCH_*.json` report writer.

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use dbsvec_obs::Json;

use crate::runners::RunOutcome;

/// Schema version stamped into every `BENCH_<experiment>.json` report.
///
/// Version 1 is the implicit, unstamped era; bump this whenever a field is
/// renamed, removed, or changes meaning, so report consumers can dispatch
/// instead of sniffing keys.
pub const BENCH_SCHEMA_VERSION: u64 = 2;

/// Wall-clock stopwatch with a per-sweep budget.
///
/// The paper caps every run at 10 hours; these harnesses default to a far
/// smaller per-experiment budget so the full suite finishes on a laptop.
/// Once the budget is spent the caller is expected to print `timeout` rows,
/// mirroring how the paper reports algorithms that exceed the limit.
#[derive(Debug)]
pub struct Stopwatch {
    start: Instant,
    budget: Duration,
}

impl Stopwatch {
    /// Starts a stopwatch with the given budget.
    pub fn with_budget(budget: Duration) -> Self {
        Self {
            start: Instant::now(),
            budget,
        }
    }

    /// Elapsed time so far.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Whether the budget is spent.
    pub fn exhausted(&self) -> bool {
        self.elapsed() >= self.budget
    }

    /// Remaining budget (zero when exhausted).
    pub fn remaining(&self) -> Duration {
        self.budget.saturating_sub(self.elapsed())
    }
}

/// Times one closure, returning its output and the wall-clock seconds.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Common CLI arguments shared by every experiment binary.
#[derive(Clone, Debug)]
pub struct BenchArgs {
    /// Workload scale factor in `(0, 1]` relative to the paper's sizes.
    pub scale: f64,
    /// Per-sweep wall-clock budget in seconds.
    pub budget_secs: f64,
    /// Master RNG seed.
    pub seed: u64,
    /// Directory for the machine-readable `BENCH_<experiment>.json`
    /// report. Defaults to the repository root so every bench run extends
    /// the `BENCH_*` trajectory; `--json DIR` overrides the destination.
    /// `None` (not reachable from the CLI) prints tables only.
    pub json_dir: Option<String>,
    /// Fit thread budget (`--threads N`). `None` leaves the binary's
    /// default behavior; experiment binaries that support it switch to a
    /// parallel-fit sweep when set.
    pub threads: Option<usize>,
    /// Free arguments (subcommands like `cardinality`).
    pub free: Vec<String>,
}

impl Default for BenchArgs {
    fn default() -> Self {
        Self {
            scale: 0.05,
            budget_secs: 120.0,
            seed: 20190401,
            json_dir: Some(default_json_dir()),
            threads: None,
            free: Vec::new(),
        }
    }
}

/// The default `BENCH_*.json` destination: the repository root (resolved
/// relative to this crate at compile time), falling back to the current
/// directory when the build tree no longer exists at run time.
fn default_json_dir() -> String {
    let repo_root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    if Path::new(repo_root).is_dir() {
        repo_root.to_string()
    } else {
        ".".to_string()
    }
}

/// Parses `--scale`, `--budget-secs`, and `--seed` from `std::env::args`,
/// collecting everything else into [`BenchArgs::free`]. Unknown `--flags`
/// abort with a usage message.
pub fn parse_args() -> BenchArgs {
    parse_arg_list(std::env::args().skip(1))
}

fn parse_arg_list(args: impl Iterator<Item = String>) -> BenchArgs {
    let mut out = BenchArgs::default();
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                out.scale = next_value(&mut args, "--scale")
                    .parse()
                    .unwrap_or_else(|e| {
                        eprintln!("bad --scale: {e}");
                        std::process::exit(2);
                    });
                assert!(
                    out.scale > 0.0 && out.scale <= 1.0,
                    "--scale must be in (0, 1]"
                );
            }
            "--budget-secs" => {
                out.budget_secs = next_value(&mut args, "--budget-secs")
                    .parse()
                    .unwrap_or_else(|e| {
                        eprintln!("bad --budget-secs: {e}");
                        std::process::exit(2);
                    });
            }
            "--seed" => {
                out.seed = next_value(&mut args, "--seed").parse().unwrap_or_else(|e| {
                    eprintln!("bad --seed: {e}");
                    std::process::exit(2);
                });
            }
            "--json" => {
                out.json_dir = Some(next_value(&mut args, "--json"));
            }
            "--threads" => {
                out.threads = Some(next_value(&mut args, "--threads").parse().unwrap_or_else(
                    |e| {
                        eprintln!("bad --threads: {e}");
                        std::process::exit(2);
                    },
                ));
            }
            other if other.starts_with("--") => {
                eprintln!(
                    "unknown flag {other}; supported: --scale F --budget-secs F --seed N --json DIR --threads N"
                );
                std::process::exit(2);
            }
            other => out.free.push(other.to_string()),
        }
    }
    out
}

fn next_value<I: Iterator<Item = String>>(args: &mut std::iter::Peekable<I>, name: &str) -> String {
    args.next().unwrap_or_else(|| {
        eprintln!("missing value for {name}");
        std::process::exit(2);
    })
}

/// Prints a fixed-width table row.
pub fn print_row(cells: &[String], widths: &[usize]) {
    let mut line = String::new();
    for (cell, width) in cells.iter().zip(widths) {
        line.push_str(&format!("{cell:>width$}  ", width = width));
    }
    println!("{}", line.trim_end());
}

/// Formats seconds for tables (`-` for skipped, `timeout` for exceeded).
pub fn fmt_secs(value: Option<f64>) -> String {
    match value {
        Some(s) if s.is_finite() => format!("{s:.3}s"),
        Some(_) => "timeout".to_string(),
        None => "-".to_string(),
    }
}

/// Accumulates profiled runs into the machine-readable
/// `BENCH_<experiment>.json` report.
///
/// Each run becomes one row carrying the wall-clock time plus — when the
/// algorithm is instrumented — the per-phase cost trajectory (spans,
/// total, self time) and the replayed event counters (range queries → θ,
/// SVDD trainings, SMO iterations, …). Uninstrumented algorithms still
/// get a timing row, so the JSON mirrors the printed tables exactly.
#[derive(Debug)]
pub struct JsonReport {
    experiment: String,
    runs: Vec<Json>,
}

impl JsonReport {
    /// Starts an empty report for `experiment` (names the output file).
    pub fn new(experiment: &str) -> Self {
        Self {
            experiment: experiment.to_string(),
            runs: Vec::new(),
        }
    }

    /// Number of rows recorded so far.
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    /// Whether no rows were recorded.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Records one finished run. `group` names the sweep (e.g.
    /// `cardinality`) and `x` is the sweep variable's value (n, d, ε, …).
    pub fn push(&mut self, group: &str, x: f64, outcome: &RunOutcome) {
        let n = outcome.clustering.len();
        let mut row = vec![
            ("group".to_string(), Json::str(group)),
            ("x".to_string(), Json::Num(x)),
            ("algorithm".to_string(), Json::str(outcome.algorithm.name())),
            ("n".to_string(), Json::UInt(n as u64)),
            ("seconds".to_string(), Json::Num(outcome.seconds)),
        ];
        if !outcome.phases.is_empty() {
            let phases = outcome
                .phases
                .iter()
                .map(|(phase, t)| {
                    Json::obj([
                        ("phase", Json::str(phase.name())),
                        ("spans", Json::UInt(t.spans as u64)),
                        ("total_secs", Json::Num(t.total.as_secs_f64())),
                        ("self_secs", Json::Num(t.self_time.as_secs_f64())),
                    ])
                })
                .collect();
            row.push(("phases".to_string(), Json::Arr(phases)));
            let c = &outcome.counts;
            row.push((
                "counts".to_string(),
                Json::obj([
                    ("theta", Json::Num(c.theta(n))),
                    ("range_queries", Json::UInt(c.range_queries)),
                    ("seeds", Json::UInt(c.seeds)),
                    ("expansion_rounds", Json::UInt(c.expansion_rounds)),
                    ("svdd_trainings", Json::UInt(c.svdd_trainings)),
                    ("smo_iterations", Json::UInt(c.smo_iterations)),
                    (
                        "warm_started_trainings",
                        Json::UInt(c.warm_started_trainings),
                    ),
                    ("iterations_exhausted", Json::UInt(c.iterations_exhausted)),
                    ("shrunk_variables", Json::UInt(c.shrunk_variables)),
                    (
                        "initial_kkt_violation_e6",
                        Json::UInt(c.initial_kkt_violation_e6),
                    ),
                    ("support_vectors", Json::UInt(c.support_vectors)),
                    ("core_support_vectors", Json::UInt(c.core_support_vectors)),
                    ("max_target_size", Json::UInt(c.max_target_size as u64)),
                    ("merges", Json::UInt(c.merges)),
                    ("noise_candidates", Json::UInt(c.noise_candidates)),
                    ("noise_confirmed", Json::UInt(c.noise_confirmed)),
                    ("sampled_candidates", Json::UInt(c.sampled_candidates)),
                    ("attachment_candidates", Json::UInt(c.attachment_candidates)),
                    ("attached_points", Json::UInt(c.attached_points)),
                ]),
            ));
        }
        self.runs.push(Json::Obj(row));
    }

    /// [`JsonReport::push`] with extra top-level key/value pairs appended
    /// to the row — used by sweeps whose x-axis needs companions (e.g. the
    /// parallel-fit sweep records thread counts and speedups).
    pub fn push_with_extras(
        &mut self,
        group: &str,
        x: f64,
        outcome: &RunOutcome,
        extras: Vec<(String, Json)>,
    ) {
        self.push(group, x, outcome);
        if let Some(Json::Obj(row)) = self.runs.last_mut() {
            row.extend(extras);
        }
    }

    /// Records a run that was skipped or timed out, so gaps in the sweep
    /// stay visible in the JSON.
    pub fn push_skipped(&mut self, group: &str, x: f64, algorithm: &str, reason: &str) {
        self.runs.push(Json::obj([
            ("group", Json::str(group)),
            ("x", Json::Num(x)),
            ("algorithm", Json::str(algorithm)),
            ("skipped", Json::str(reason)),
        ]));
    }

    /// The whole report as one JSON value.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("version", Json::UInt(BENCH_SCHEMA_VERSION)),
            ("experiment", Json::str(&self.experiment)),
            ("runs", Json::Arr(self.runs.clone())),
        ])
    }

    /// Writes `BENCH_<experiment>.json` into `dir`, returning the path.
    pub fn write_to_dir(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("BENCH_{}.json", self.experiment));
        std::fs::write(&path, format!("{}\n", self.to_json()))?;
        Ok(path)
    }

    /// Writes the report if `--json DIR` was given, printing where it
    /// went; quietly does nothing otherwise.
    pub fn write_if_requested(&self, args: &BenchArgs) {
        if let Some(dir) = &args.json_dir {
            match self.write_to_dir(Path::new(dir)) {
                Ok(path) => println!("json report written to {}", path.display()),
                Err(e) => eprintln!("cannot write json report to {dir}: {e}"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> BenchArgs {
        parse_arg_list(tokens.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_when_no_args() {
        let args = parse(&[]);
        assert_eq!(args.scale, 0.05);
        assert_eq!(args.seed, 20190401);
        assert!(args.free.is_empty());
        // Reports land in the repo root by default, so every bench run
        // extends the BENCH_* trajectory without remembering --json.
        let dir = args.json_dir.expect("json output is on by default");
        assert!(Path::new(&dir).is_dir(), "{dir} should exist");
    }

    #[test]
    fn parses_flags_and_free_args() {
        let args = parse(&["cardinality", "--scale", "0.5", "--seed", "7"]);
        assert_eq!(args.scale, 0.5);
        assert_eq!(args.seed, 7);
        assert_eq!(args.free, vec!["cardinality"]);
    }

    #[test]
    fn stopwatch_budget() {
        let sw = Stopwatch::with_budget(Duration::from_secs(3600));
        assert!(!sw.exhausted());
        assert!(sw.remaining() > Duration::from_secs(3000));
        let spent = Stopwatch::with_budget(Duration::ZERO);
        assert!(spent.exhausted());
        assert_eq!(spent.remaining(), Duration::ZERO);
    }

    #[test]
    fn time_measures_and_returns() {
        let (value, secs) = time(|| 41 + 1);
        assert_eq!(value, 42);
        assert!(secs >= 0.0);
    }

    #[test]
    fn fmt_secs_variants() {
        assert_eq!(fmt_secs(None), "-");
        assert_eq!(fmt_secs(Some(f64::INFINITY)), "timeout");
        assert_eq!(fmt_secs(Some(1.5)), "1.500s");
    }

    #[test]
    fn parses_json_flag() {
        let args = parse(&["--json", "out"]);
        assert_eq!(args.json_dir.as_deref(), Some("out"));
        // Without the flag the default destination (repo root) remains.
        assert!(parse(&[]).json_dir.is_some());
    }

    #[test]
    fn parses_threads_flag() {
        assert_eq!(parse(&["--threads", "4"]).threads, Some(4));
        assert_eq!(parse(&["--threads", "0"]).threads, Some(0));
        assert_eq!(parse(&[]).threads, None);
    }

    #[test]
    fn json_report_carries_phase_trajectory_and_parses() {
        use crate::runners::{run_algorithm_profiled, Algorithm};
        use dbsvec_geometry::PointSet;

        let mut ps = PointSet::new(2);
        for c in [[0.0, 0.0], [50.0, 0.0]] {
            for i in 0..40 {
                ps.push(&[c[0] + (i % 8) as f64 * 0.3, c[1] + (i / 8) as f64 * 0.3]);
            }
        }
        let mut report = JsonReport::new("test");
        assert!(report.is_empty());
        let out = run_algorithm_profiled(Algorithm::Dbsvec, &ps, 1.5, 4, 7);
        report.push("cardinality", ps.len() as f64, &out);
        report.push_skipped("cardinality", ps.len() as f64, "R-DBSCAN", "timeout");
        assert_eq!(report.len(), 2);

        let text = report.to_json().to_string();
        let parsed = dbsvec_obs::json::parse(&text).expect("report is valid JSON");
        // The hand-rolled parser reads small non-negative integers as Int.
        assert_eq!(
            parsed.get("version"),
            Some(&Json::Int(BENCH_SCHEMA_VERSION as i64)),
            "every report must carry the schema version"
        );
        assert_eq!(parsed.get("experiment"), Some(&Json::str("test")));
        let runs = match parsed.get("runs") {
            Some(Json::Arr(rows)) => rows,
            other => panic!("runs should be an array, got {other:?}"),
        };
        assert_eq!(runs.len(), 2);
        let first = &runs[0];
        assert_eq!(first.get("algorithm"), Some(&Json::str("DBSVEC")));
        let phases = match first.get("phases") {
            Some(Json::Arr(rows)) => rows,
            other => panic!("phases should be an array, got {other:?}"),
        };
        assert!(!phases.is_empty());
        assert!(phases
            .iter()
            .any(|p| p.get("phase") == Some(&Json::str("svdd_train"))));
        let counts = first.get("counts").expect("profiled run has counts");
        assert!(matches!(counts.get("range_queries"), Some(Json::Int(n)) if *n > 0));
        assert!(matches!(counts.get("theta"), Some(Json::Num(t)) if *t > 0.0));
        assert_eq!(runs[1].get("skipped"), Some(&Json::str("timeout")));
    }
}
