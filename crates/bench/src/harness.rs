//! Shared experiment plumbing: timing, CLI parsing, table printing.

use std::time::{Duration, Instant};

/// Wall-clock stopwatch with a per-sweep budget.
///
/// The paper caps every run at 10 hours; these harnesses default to a far
/// smaller per-experiment budget so the full suite finishes on a laptop.
/// Once the budget is spent the caller is expected to print `timeout` rows,
/// mirroring how the paper reports algorithms that exceed the limit.
#[derive(Debug)]
pub struct Stopwatch {
    start: Instant,
    budget: Duration,
}

impl Stopwatch {
    /// Starts a stopwatch with the given budget.
    pub fn with_budget(budget: Duration) -> Self {
        Self {
            start: Instant::now(),
            budget,
        }
    }

    /// Elapsed time so far.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Whether the budget is spent.
    pub fn exhausted(&self) -> bool {
        self.elapsed() >= self.budget
    }

    /// Remaining budget (zero when exhausted).
    pub fn remaining(&self) -> Duration {
        self.budget.saturating_sub(self.elapsed())
    }
}

/// Times one closure, returning its output and the wall-clock seconds.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Common CLI arguments shared by every experiment binary.
#[derive(Clone, Debug)]
pub struct BenchArgs {
    /// Workload scale factor in `(0, 1]` relative to the paper's sizes.
    pub scale: f64,
    /// Per-sweep wall-clock budget in seconds.
    pub budget_secs: f64,
    /// Master RNG seed.
    pub seed: u64,
    /// Free arguments (subcommands like `cardinality`).
    pub free: Vec<String>,
}

impl Default for BenchArgs {
    fn default() -> Self {
        Self {
            scale: 0.05,
            budget_secs: 120.0,
            seed: 20190401,
            free: Vec::new(),
        }
    }
}

/// Parses `--scale`, `--budget-secs`, and `--seed` from `std::env::args`,
/// collecting everything else into [`BenchArgs::free`]. Unknown `--flags`
/// abort with a usage message.
pub fn parse_args() -> BenchArgs {
    parse_arg_list(std::env::args().skip(1))
}

fn parse_arg_list(args: impl Iterator<Item = String>) -> BenchArgs {
    let mut out = BenchArgs::default();
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                out.scale = next_value(&mut args, "--scale")
                    .parse()
                    .unwrap_or_else(|e| {
                        eprintln!("bad --scale: {e}");
                        std::process::exit(2);
                    });
                assert!(
                    out.scale > 0.0 && out.scale <= 1.0,
                    "--scale must be in (0, 1]"
                );
            }
            "--budget-secs" => {
                out.budget_secs = next_value(&mut args, "--budget-secs")
                    .parse()
                    .unwrap_or_else(|e| {
                        eprintln!("bad --budget-secs: {e}");
                        std::process::exit(2);
                    });
            }
            "--seed" => {
                out.seed = next_value(&mut args, "--seed").parse().unwrap_or_else(|e| {
                    eprintln!("bad --seed: {e}");
                    std::process::exit(2);
                });
            }
            other if other.starts_with("--") => {
                eprintln!("unknown flag {other}; supported: --scale F --budget-secs F --seed N");
                std::process::exit(2);
            }
            other => out.free.push(other.to_string()),
        }
    }
    out
}

fn next_value<I: Iterator<Item = String>>(args: &mut std::iter::Peekable<I>, name: &str) -> String {
    args.next().unwrap_or_else(|| {
        eprintln!("missing value for {name}");
        std::process::exit(2);
    })
}

/// Prints a fixed-width table row.
pub fn print_row(cells: &[String], widths: &[usize]) {
    let mut line = String::new();
    for (cell, width) in cells.iter().zip(widths) {
        line.push_str(&format!("{cell:>width$}  ", width = width));
    }
    println!("{}", line.trim_end());
}

/// Formats seconds for tables (`-` for skipped, `timeout` for exceeded).
pub fn fmt_secs(value: Option<f64>) -> String {
    match value {
        Some(s) if s.is_finite() => format!("{s:.3}s"),
        Some(_) => "timeout".to_string(),
        None => "-".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> BenchArgs {
        parse_arg_list(tokens.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_when_no_args() {
        let args = parse(&[]);
        assert_eq!(args.scale, 0.05);
        assert_eq!(args.seed, 20190401);
        assert!(args.free.is_empty());
    }

    #[test]
    fn parses_flags_and_free_args() {
        let args = parse(&["cardinality", "--scale", "0.5", "--seed", "7"]);
        assert_eq!(args.scale, 0.5);
        assert_eq!(args.seed, 7);
        assert_eq!(args.free, vec!["cardinality"]);
    }

    #[test]
    fn stopwatch_budget() {
        let sw = Stopwatch::with_budget(Duration::from_secs(3600));
        assert!(!sw.exhausted());
        assert!(sw.remaining() > Duration::from_secs(3000));
        let spent = Stopwatch::with_budget(Duration::ZERO);
        assert!(spent.exhausted());
        assert_eq!(spent.remaining(), Duration::ZERO);
    }

    #[test]
    fn time_measures_and_returns() {
        let (value, secs) = time(|| 41 + 1);
        assert_eq!(value, 42);
        assert!(secs >= 0.0);
    }

    #[test]
    fn fmt_secs_variants() {
        assert_eq!(fmt_secs(None), "-");
        assert_eq!(fmt_secs(Some(f64::INFINITY)), "timeout");
        assert_eq!(fmt_secs(Some(1.5)), "1.500s");
    }
}
