//! Clustering evaluation metrics for the DBSVEC experiments.
//!
//! Two families:
//!
//! * **Agreement with a reference clustering** — used to score approximate
//!   DBSCAN algorithms against exact DBSCAN:
//!   [`recall()`](fn@recall) (the paper's accuracy metric, after Lulli et al.: the
//!   fraction of same-cluster point pairs of the reference that the
//!   candidate preserves), plus [`adjusted_rand_index`],
//!   [`normalized_mutual_information`], and [`purity`] as extras.
//! * **Internal validity** — used by the paper's Table IV:
//!   [`silhouette_compactness`] (higher is better) and
//!   [`davies_bouldin_separation`] (lower is better).
//!
//! All agreement metrics consume `&[Option<u32>]` assignment slices (`None`
//! = noise), the exchange format produced by `dbsvec_core::Clustering`.
//! Pair counts use the contingency-table identity `Σ C(n_ij, 2)` rather
//! than enumerating the O(n²) pairs, so recall over a million points takes
//! milliseconds.

pub mod ari;
pub mod contingency;
pub mod davies_bouldin;
pub mod nmi;
pub mod pairs;
pub mod recall;
pub mod silhouette;

pub use ari::adjusted_rand_index;
pub use contingency::ContingencyTable;
pub use davies_bouldin::davies_bouldin_separation;
pub use nmi::{normalized_mutual_information, purity};
pub use pairs::{fowlkes_mallows, pair_f1, pair_jaccard, pair_precision, rand_index};
pub use recall::recall;
pub use silhouette::silhouette_compactness;
