//! Adjusted Rand Index.

use crate::contingency::{choose2, ContingencyTable};

/// Adjusted Rand Index between two clusterings (Hubert & Arabie 1985).
///
/// Chance-corrected pair agreement: 1.0 for identical partitions, ~0 for
/// independent ones, negative for worse-than-chance. Noise points are
/// treated as **singleton clusters** (each its own cluster), the standard
/// convention when comparing DBSCAN-family outputs — two algorithms that
/// agree on the noise set are rewarded, and one that dumps noise into a real
/// cluster is penalized.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn adjusted_rand_index(reference: &[Option<u32>], candidate: &[Option<u32>]) -> f64 {
    let a = noise_as_singletons(reference);
    let b = noise_as_singletons(candidate);
    let table = ContingencyTable::new(&a, &b);

    let n = table.total();
    if n < 2 {
        return 1.0;
    }
    let sum_cells: u64 = table.joint_pairs();
    let sum_a: u64 = table.reference_pairs();
    let sum_b: u64 = table.candidate_pairs();
    let total_pairs = choose2(n);

    let expected = sum_a as f64 * sum_b as f64 / total_pairs as f64;
    let max_index = 0.5 * (sum_a + sum_b) as f64;
    if (max_index - expected).abs() < 1e-12 {
        // Degenerate: both partitions are all-singletons or one cluster.
        return if sum_cells as f64 == max_index {
            1.0
        } else {
            0.0
        };
    }
    (sum_cells as f64 - expected) / (max_index - expected)
}

/// Rewrites noise points as fresh singleton clusters.
pub(crate) fn noise_as_singletons(labels: &[Option<u32>]) -> Vec<Option<u32>> {
    let max_label = labels.iter().flatten().copied().max().map_or(0, |m| m + 1);
    let mut next = max_label;
    labels
        .iter()
        .map(|l| match l {
            Some(c) => Some(*c),
            None => {
                let id = next;
                next += 1;
                Some(id)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_partitions_score_one() {
        let labels = [Some(0), Some(0), Some(1), Some(1), None];
        assert!((adjusted_rand_index(&labels, &labels) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn permuted_labels_score_one() {
        let a = [Some(0), Some(0), Some(1), Some(1)];
        let b = [Some(3), Some(3), Some(0), Some(0)];
        assert!((adjusted_rand_index(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disagreement_scores_below_one() {
        let a = [Some(0), Some(0), Some(0), Some(1), Some(1), Some(1)];
        let b = [Some(0), Some(0), Some(1), Some(1), Some(2), Some(2)];
        let ari = adjusted_rand_index(&a, &b);
        assert!(ari < 1.0 && ari > -1.0);
    }

    #[test]
    fn noise_agreement_matters() {
        let a = [Some(0), Some(0), None, None];
        let same_noise = [Some(0), Some(0), None, None];
        let noise_merged = [Some(0), Some(0), Some(0), Some(0)];
        assert!(
            adjusted_rand_index(&a, &same_noise) > adjusted_rand_index(&a, &noise_merged),
            "matching the noise set should score higher"
        );
    }

    #[test]
    fn known_value_hand_computed() {
        // a: {0,1}{2,3}; b: {0,1,2}{3}. n=4, pairs=6.
        // joint cells: (0,0)=2, (1,0)=1, (1,1)=1 -> Σ C(nij,2) = 1.
        // sum_a = 2, sum_b = 3, expected = 2*3/6 = 1, max = 2.5.
        // ARI = (1-1)/(2.5-1) = 0.
        let a = [Some(0), Some(0), Some(1), Some(1)];
        let b = [Some(0), Some(0), Some(0), Some(1)];
        assert!(adjusted_rand_index(&a, &b).abs() < 1e-12);
    }

    #[test]
    fn tiny_inputs() {
        assert_eq!(adjusted_rand_index(&[], &[]), 1.0);
        assert_eq!(adjusted_rand_index(&[Some(0)], &[None]), 1.0);
    }
}
