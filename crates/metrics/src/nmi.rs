//! Normalized mutual information and purity.

use crate::ari::noise_as_singletons;
use crate::contingency::ContingencyTable;

/// Normalized mutual information `I(R; C) / √(H(R)·H(C))`.
///
/// 1.0 for identical partitions (up to relabeling), 0.0 for independent
/// ones. Noise points are treated as singleton clusters, as in
/// [`crate::adjusted_rand_index`].
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn normalized_mutual_information(reference: &[Option<u32>], candidate: &[Option<u32>]) -> f64 {
    let a = noise_as_singletons(reference);
    let b = noise_as_singletons(candidate);
    let table = ContingencyTable::new(&a, &b);
    let n = table.total() as f64;
    if n == 0.0 {
        return 1.0;
    }

    let h = |sizes: Vec<u64>| -> f64 {
        sizes
            .into_iter()
            .map(|s| {
                let p = s as f64 / n;
                -p * p.ln()
            })
            .sum()
    };
    let h_ref = h(table.reference_sizes().collect());
    let h_cand = h(table.candidate_sizes().collect());

    let mut mi = 0.0;
    let ref_size: std::collections::HashMap<u32, u64> = {
        // Rebuild marginals keyed by label for the joint term.
        let mut m = std::collections::HashMap::new();
        for l in a.iter().flatten() {
            *m.entry(*l).or_insert(0u64) += 1;
        }
        m
    };
    let cand_size: std::collections::HashMap<u32, u64> = {
        let mut m = std::collections::HashMap::new();
        for l in b.iter().flatten() {
            *m.entry(*l).or_insert(0u64) += 1;
        }
        m
    };
    for (r, c, count) in table.cells() {
        let p_rc = count as f64 / n;
        let p_r = ref_size[&r] as f64 / n;
        let p_c = cand_size[&c] as f64 / n;
        mi += p_rc * (p_rc / (p_r * p_c)).ln();
    }

    if h_ref <= 0.0 && h_cand <= 0.0 {
        return 1.0; // both partitions are a single cluster
    }
    if h_ref <= 0.0 || h_cand <= 0.0 {
        return 0.0;
    }
    (mi / (h_ref * h_cand).sqrt()).clamp(0.0, 1.0)
}

/// Purity: each candidate cluster votes for its dominant reference cluster;
/// purity is the fraction of points that agree with their cluster's vote.
///
/// Noise in the candidate counts as wrong unless the reference also calls
/// it noise. Returns 1.0 for empty input.
pub fn purity(reference: &[Option<u32>], candidate: &[Option<u32>]) -> f64 {
    assert_eq!(
        reference.len(),
        candidate.len(),
        "clusterings must label the same points"
    );
    if reference.is_empty() {
        return 1.0;
    }
    let a = noise_as_singletons(reference);
    let table = ContingencyTable::new(&a, candidate);
    let mut best: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
    for (_, c, count) in table.cells() {
        let entry = best.entry(c).or_insert(0);
        *entry = (*entry).max(count);
    }
    let correct: u64 = best.values().sum::<u64>()
        + reference
            .iter()
            .zip(candidate)
            .filter(|(r, c)| r.is_none() && c.is_none())
            .count() as u64;
    correct as f64 / reference.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nmi_identical_is_one() {
        let labels = [Some(0), Some(0), Some(1), Some(1), Some(2)];
        assert!((normalized_mutual_information(&labels, &labels) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn nmi_permuted_is_one() {
        let a = [Some(0), Some(0), Some(1), Some(1)];
        let b = [Some(7), Some(7), Some(2), Some(2)];
        assert!((normalized_mutual_information(&a, &b) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn nmi_independent_is_low() {
        // Candidate splits orthogonally to the reference.
        let a = [Some(0), Some(0), Some(1), Some(1)];
        let b = [Some(0), Some(1), Some(0), Some(1)];
        let nmi = normalized_mutual_information(&a, &b);
        assert!(
            nmi < 0.01,
            "orthogonal split should carry ~no information, got {nmi}"
        );
    }

    #[test]
    fn nmi_single_cluster_edge_cases() {
        let one = [Some(0), Some(0), Some(0)];
        let split = [Some(0), Some(1), Some(2)];
        assert_eq!(normalized_mutual_information(&one, &one), 1.0);
        assert_eq!(normalized_mutual_information(&one, &split), 0.0);
    }

    #[test]
    fn purity_perfect_and_imperfect() {
        let reference = [Some(0), Some(0), Some(1), Some(1)];
        assert_eq!(purity(&reference, &reference), 1.0);
        let candidate = [Some(0), Some(0), Some(0), Some(1)];
        // Cluster 0 votes ref-0 (2 of 3 right), cluster 1 votes ref-1 (1 right).
        assert!((purity(&reference, &candidate) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn purity_counts_matching_noise() {
        let reference = [Some(0), None];
        let candidate = [Some(0), None];
        assert_eq!(purity(&reference, &candidate), 1.0);
        let bad = [Some(0), Some(0)];
        assert!((purity(&reference, &bad) - 0.5).abs() < 1e-12);
    }
}
