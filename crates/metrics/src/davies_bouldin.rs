//! Davies–Bouldin separation (paper Table IV, "S", lower is better).

use dbsvec_geometry::PointSet;

/// Davies–Bouldin index (Davies & Bouldin 1979), the paper's *Separation*
/// metric \[38\].
///
/// For clusters `i` with centroid `c_i` and mean intra-cluster scatter
/// `S_i`, the index is the average over clusters of the worst ratio
/// `(S_i + S_j) / ||c_i − c_j||`. Compact, far-apart clusters give small
/// values.
///
/// Conventions: noise points are excluded; fewer than two non-empty
/// clusters yields 0.0; coincident centroids contribute an infinite ratio,
/// surfacing the degenerate clustering rather than hiding it.
///
/// # Panics
///
/// Panics if `assignments.len() != points.len()`.
pub fn davies_bouldin_separation(points: &PointSet, assignments: &[Option<u32>]) -> f64 {
    assert_eq!(points.len(), assignments.len(), "one assignment per point");
    let num_clusters = match assignments.iter().flatten().max() {
        Some(&m) => m as usize + 1,
        None => return 0.0,
    };
    let dims = points.dims();

    // Centroids.
    let mut centroids = vec![vec![0.0; dims]; num_clusters];
    let mut sizes = vec![0u64; num_clusters];
    for (i, a) in assignments.iter().enumerate() {
        if let Some(c) = a {
            sizes[*c as usize] += 1;
            for (acc, &x) in centroids[*c as usize]
                .iter_mut()
                .zip(points.point(i as u32))
            {
                *acc += x;
            }
        }
    }
    let occupied: Vec<usize> = (0..num_clusters).filter(|&c| sizes[c] > 0).collect();
    if occupied.len() < 2 {
        return 0.0;
    }
    for &c in &occupied {
        for acc in &mut centroids[c] {
            *acc /= sizes[c] as f64;
        }
    }

    // Mean scatter per cluster.
    let mut scatter = vec![0.0; num_clusters];
    for (i, a) in assignments.iter().enumerate() {
        if let Some(c) = a {
            scatter[*c as usize] +=
                dbsvec_geometry::euclidean(points.point(i as u32), &centroids[*c as usize]);
        }
    }
    for &c in &occupied {
        scatter[c] /= sizes[c] as f64;
    }

    // DB = mean over i of max_j (S_i + S_j) / M_ij.
    let mut total = 0.0;
    for &i in &occupied {
        let mut worst: f64 = 0.0;
        for &j in &occupied {
            if i == j {
                continue;
            }
            let m = dbsvec_geometry::euclidean(&centroids[i], &centroids[j]);
            let ratio = if m > 0.0 {
                (scatter[i] + scatter[j]) / m
            } else {
                f64::INFINITY
            };
            worst = worst.max(ratio);
        }
        total += worst;
    }
    total / occupied.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tight_far_clusters_score_low() {
        let mut ps = PointSet::new(1);
        let mut labels = Vec::new();
        for i in 0..5 {
            ps.push(&[i as f64 * 0.01]);
            labels.push(Some(0));
            ps.push(&[1000.0 + i as f64 * 0.01]);
            labels.push(Some(1));
        }
        let db = davies_bouldin_separation(&ps, &labels);
        assert!(db < 0.01, "got {db}");
    }

    #[test]
    fn overlapping_clusters_score_high() {
        let mut ps = PointSet::new(1);
        let mut labels = Vec::new();
        for i in 0..10 {
            ps.push(&[i as f64]);
            labels.push(Some(i % 2)); // interleaved clusters
        }
        let db = davies_bouldin_separation(&ps, &labels);
        assert!(
            db > 2.0,
            "interleaved clusters should score poorly, got {db}"
        );
    }

    #[test]
    fn hand_computed_value() {
        // Cluster 0: {0, 2} centroid 1, scatter 1.
        // Cluster 1: {10, 12} centroid 11, scatter 1.
        // DB = (1+1)/10 = 0.2 for both clusters -> mean 0.2.
        let ps = PointSet::from_rows(&[vec![0.0], vec![2.0], vec![10.0], vec![12.0]]);
        let labels = [Some(0), Some(0), Some(1), Some(1)];
        assert!((davies_bouldin_separation(&ps, &labels) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn single_cluster_is_zero() {
        let ps = PointSet::from_rows(&[vec![0.0], vec![1.0]]);
        assert_eq!(davies_bouldin_separation(&ps, &[Some(0), Some(0)]), 0.0);
    }

    #[test]
    fn noise_is_excluded() {
        let ps = PointSet::from_rows(&[vec![0.0], vec![0.2], vec![10.0], vec![10.2], vec![500.0]]);
        let labels = [Some(0), Some(0), Some(1), Some(1), None];
        let with_noise = davies_bouldin_separation(&ps, &labels);
        let without = davies_bouldin_separation(
            &ps.subset(&[0, 1, 2, 3]),
            &[Some(0), Some(0), Some(1), Some(1)],
        );
        assert!((with_noise - without).abs() < 1e-12);
    }

    #[test]
    fn coincident_centroids_are_infinite() {
        let ps = PointSet::from_rows(&[vec![0.0], vec![2.0], vec![0.0], vec![2.0]]);
        let labels = [Some(0), Some(0), Some(1), Some(1)];
        assert!(davies_bouldin_separation(&ps, &labels).is_infinite());
    }
}
