//! Silhouette-based compactness (paper Table IV, "C", higher is better).

use dbsvec_geometry::PointSet;

/// Mean silhouette coefficient over all clustered points (Rousseeuw 1987),
/// the paper's *Compactness* metric \[37\].
///
/// For point `i` in cluster `A`: `a(i)` is its mean distance to the rest of
/// `A`, `b(i)` the smallest mean distance to any other cluster, and
/// `s(i) = (b − a)/max(a, b) ∈ [−1, 1]`. Conventions:
///
/// * noise points are excluded entirely,
/// * a point alone in its cluster contributes `s = 0`,
/// * fewer than two clusters yields 0.0 (silhouette is undefined; 0 is the
///   neutral value).
///
/// Cost is O(n²·d) over clustered points — fine for the validation-sized
/// datasets Table IV uses.
///
/// # Panics
///
/// Panics if `assignments.len() != points.len()`.
pub fn silhouette_compactness(points: &PointSet, assignments: &[Option<u32>]) -> f64 {
    assert_eq!(points.len(), assignments.len(), "one assignment per point");
    let clustered: Vec<(u32, u32)> = assignments
        .iter()
        .enumerate()
        .filter_map(|(i, a)| a.map(|c| (i as u32, c)))
        .collect();
    if clustered.is_empty() {
        return 0.0;
    }
    let num_clusters = clustered.iter().map(|&(_, c)| c).max().unwrap() as usize + 1;
    if num_clusters < 2 {
        return 0.0;
    }
    let mut cluster_sizes = vec![0u64; num_clusters];
    for &(_, c) in &clustered {
        cluster_sizes[c as usize] += 1;
    }

    let mut total = 0.0;
    let mut mean_dist = vec![0.0; num_clusters];
    for &(i, ci) in &clustered {
        mean_dist.fill(0.0);
        for &(j, cj) in &clustered {
            if i != j {
                mean_dist[cj as usize] += points.distance(i, j);
            }
        }
        let own = cluster_sizes[ci as usize];
        let a = if own > 1 {
            mean_dist[ci as usize] / (own - 1) as f64
        } else {
            f64::NAN
        };
        let b = mean_dist
            .iter()
            .enumerate()
            .filter(|&(c, _)| c != ci as usize && cluster_sizes[c] > 0)
            .map(|(c, &s)| s / cluster_sizes[c] as f64)
            .fold(f64::INFINITY, f64::min);
        let s = if a.is_nan() || !b.is_finite() {
            0.0 // singleton cluster or no other cluster
        } else {
            (b - a) / a.max(b)
        };
        total += s;
    }
    total / clustered.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> (PointSet, Vec<Option<u32>>) {
        let mut ps = PointSet::new(2);
        let mut labels = Vec::new();
        for i in 0..10 {
            ps.push(&[i as f64 * 0.01, 0.0]);
            labels.push(Some(0));
            ps.push(&[100.0 + i as f64 * 0.01, 0.0]);
            labels.push(Some(1));
        }
        (ps, labels)
    }

    #[test]
    fn well_separated_blobs_score_near_one() {
        let (ps, labels) = two_blobs();
        let s = silhouette_compactness(&ps, &labels);
        assert!(
            s > 0.99,
            "tight, well separated blobs should score ~1, got {s}"
        );
    }

    #[test]
    fn shuffled_labels_score_poorly() {
        let (ps, labels) = two_blobs();
        // Swap half the labels: clusters now straddle both blobs.
        let bad: Vec<Option<u32>> = labels
            .iter()
            .enumerate()
            .map(|(i, &l)| if i % 4 == 0 { l.map(|c| 1 - c) } else { l })
            .collect();
        let good = silhouette_compactness(&ps, &labels);
        let poor = silhouette_compactness(&ps, &bad);
        assert!(poor < good);
        assert!(poor < 0.5);
    }

    #[test]
    fn single_cluster_is_zero() {
        let ps = PointSet::from_rows(&[vec![0.0], vec![1.0], vec![2.0]]);
        assert_eq!(
            silhouette_compactness(&ps, &[Some(0), Some(0), Some(0)]),
            0.0
        );
    }

    #[test]
    fn noise_is_excluded() {
        let (ps, mut labels) = two_blobs();
        let with_noise = silhouette_compactness(&ps, &labels);
        // Turning two points into noise must not crash nor change much.
        labels[0] = None;
        labels[1] = None;
        let s = silhouette_compactness(&ps, &labels);
        assert!((s - with_noise).abs() < 0.05);
    }

    #[test]
    fn all_noise_is_zero() {
        let ps = PointSet::from_rows(&[vec![0.0], vec![1.0]]);
        assert_eq!(silhouette_compactness(&ps, &[None, None]), 0.0);
    }

    #[test]
    fn singleton_cluster_contributes_zero() {
        let ps = PointSet::from_rows(&[vec![0.0], vec![0.1], vec![50.0]]);
        let labels = [Some(0), Some(0), Some(1)];
        let s = silhouette_compactness(&ps, &labels);
        // Two near points score ~1 each, singleton scores 0: mean ≈ 2/3.
        assert!(s > 0.6 && s < 0.7, "got {s}");
    }
}
