//! Additional pair-counting agreement metrics.
//!
//! [`crate::recall()`](fn@crate::recall) is the paper's headline metric; these complete the
//! standard pair-confusion family so users can report whichever their
//! venue expects. All are O(n + cells) via the shared
//! [`crate::ContingencyTable`], with noise treated as singleton clusters
//! (see [`crate::adjusted_rand_index`]).

use crate::ari::noise_as_singletons;
use crate::contingency::{choose2, ContingencyTable};

/// Pair-level precision: of the pairs the *candidate* clusters together,
/// the fraction the reference also clusters together. The mirror image of
/// [`crate::recall()`](fn@crate::recall); 1.0 when the candidate never merges reference-split
/// pairs (DBSVEC's Theorem 1 direction).
pub fn pair_precision(reference: &[Option<u32>], candidate: &[Option<u32>]) -> f64 {
    let table = ContingencyTable::new(reference, candidate);
    let denom = table.candidate_pairs();
    if denom == 0 {
        return 1.0;
    }
    table.joint_pairs() as f64 / denom as f64
}

/// Pair-level F1: harmonic mean of [`pair_precision`] and [`crate::recall()`](fn@crate::recall).
pub fn pair_f1(reference: &[Option<u32>], candidate: &[Option<u32>]) -> f64 {
    let p = pair_precision(reference, candidate);
    let r = crate::recall(reference, candidate);
    if p + r == 0.0 {
        0.0
    } else {
        2.0 * p * r / (p + r)
    }
}

/// Fowlkes–Mallows index: geometric mean of pair precision and recall,
/// with noise as singletons. 1.0 for identical partitions.
pub fn fowlkes_mallows(reference: &[Option<u32>], candidate: &[Option<u32>]) -> f64 {
    let a = noise_as_singletons(reference);
    let b = noise_as_singletons(candidate);
    let table = ContingencyTable::new(&a, &b);
    let tp = table.joint_pairs() as f64;
    let ref_pairs = table.reference_pairs() as f64;
    let cand_pairs = table.candidate_pairs() as f64;
    if ref_pairs == 0.0 || cand_pairs == 0.0 {
        return if ref_pairs == cand_pairs { 1.0 } else { 0.0 };
    }
    tp / (ref_pairs * cand_pairs).sqrt()
}

/// Jaccard index over point pairs: `TP / (TP + FP + FN)` where TP are the
/// pairs clustered together in both partitions. Noise as singletons.
pub fn pair_jaccard(reference: &[Option<u32>], candidate: &[Option<u32>]) -> f64 {
    let a = noise_as_singletons(reference);
    let b = noise_as_singletons(candidate);
    let table = ContingencyTable::new(&a, &b);
    let tp = table.joint_pairs();
    let fp = table.candidate_pairs() - tp;
    let fnn = table.reference_pairs() - tp;
    let denom = tp + fp + fnn;
    if denom == 0 {
        return 1.0;
    }
    tp as f64 / denom as f64
}

/// Rand index (unadjusted): fraction of point pairs on which the two
/// partitions agree (both together or both apart). Noise as singletons.
pub fn rand_index(reference: &[Option<u32>], candidate: &[Option<u32>]) -> f64 {
    let a = noise_as_singletons(reference);
    let b = noise_as_singletons(candidate);
    let table = ContingencyTable::new(&a, &b);
    let total = choose2(table.total());
    if total == 0 {
        return 1.0;
    }
    let tp = table.joint_pairs();
    let fp = table.candidate_pairs() - tp;
    let fnn = table.reference_pairs() - tp;
    let tn = total - tp - fp - fnn;
    (tp + tn) as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: [Option<u32>; 6] = [Some(0), Some(0), Some(0), Some(1), Some(1), None];

    #[test]
    fn identity_scores_one_everywhere() {
        assert_eq!(pair_precision(&A, &A), 1.0);
        assert_eq!(pair_f1(&A, &A), 1.0);
        assert!((fowlkes_mallows(&A, &A) - 1.0).abs() < 1e-12);
        assert_eq!(pair_jaccard(&A, &A), 1.0);
        assert_eq!(rand_index(&A, &A), 1.0);
    }

    #[test]
    fn precision_penalizes_merges_recall_does_not() {
        let merged = [Some(0), Some(0), Some(0), Some(0), Some(0), None];
        assert_eq!(crate::recall(&A, &merged), 1.0);
        // Candidate has C(5,2)=10 pairs; only 3+1=4 exist in the reference.
        assert!((pair_precision(&A, &merged) - 0.4).abs() < 1e-12);
        let f1 = pair_f1(&A, &merged);
        assert!((f1 - 2.0 * 0.4 / 1.4).abs() < 1e-12);
    }

    #[test]
    fn fowlkes_mallows_hand_computed() {
        let split = [Some(0), Some(0), Some(1), Some(2), Some(2), None];
        // Singleton-ized: ref pairs = 3 + 1 = 4; cand pairs = 1 + 1 = 2.
        // Joint pairs = 1 (first two) + 1 (last pair of cluster 1) = 2.
        let fm = fowlkes_mallows(&A, &split);
        assert!((fm - 2.0 / (4.0f64 * 2.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn jaccard_and_rand_move_together() {
        let other = [Some(0), Some(0), Some(1), Some(1), Some(1), Some(1)];
        let j = pair_jaccard(&A, &other);
        let r = rand_index(&A, &other);
        assert!(j < 1.0 && j > 0.0);
        assert!(r < 1.0 && r > 0.0);
        assert!(
            r >= j,
            "Rand counts true negatives, so it is never below Jaccard"
        );
    }

    #[test]
    fn degenerate_inputs() {
        let empty: [Option<u32>; 0] = [];
        assert_eq!(pair_precision(&empty, &empty), 1.0);
        assert_eq!(rand_index(&empty, &empty), 1.0);
        let single = [None];
        assert_eq!(pair_jaccard(&single, &single), 1.0);
        assert_eq!(fowlkes_mallows(&single, &single), 1.0);
    }
}
