//! The paper's clustering accuracy metric (§III-C, after Lulli et al.).

use crate::contingency::ContingencyTable;

/// Pair recall of `candidate` against `reference`.
///
/// > "the ratio of point pairs that share the same cluster in the clustering
/// > results of both DBSCAN and an approximate DBSCAN algorithm to be
/// > evaluated" — §III-C.
///
/// Concretely: of all point pairs placed in one cluster by the *reference*
/// (exact DBSCAN), the fraction that the *candidate* also places in one
/// cluster. 1.0 means the candidate never splits a reference cluster — the
/// property DBSVEC's Theorem 1 trades away only under rare conditions.
///
/// A reference with no same-cluster pairs (all noise / all singletons)
/// yields 1.0 by convention: there was nothing to preserve.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn recall(reference: &[Option<u32>], candidate: &[Option<u32>]) -> f64 {
    let table = ContingencyTable::new(reference, candidate);
    let denom = table.reference_pairs();
    if denom == 0 {
        return 1.0;
    }
    table.joint_pairs() as f64 / denom as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_clusterings_score_one() {
        let labels = [Some(0), Some(0), Some(1), Some(1), None];
        assert_eq!(recall(&labels, &labels), 1.0);
    }

    #[test]
    fn relabeled_clusters_still_score_one() {
        let reference = [Some(0), Some(0), Some(1), Some(1)];
        let candidate = [Some(9), Some(9), Some(4), Some(4)];
        assert_eq!(recall(&reference, &candidate), 1.0);
    }

    #[test]
    fn splitting_a_cluster_halves_its_pairs() {
        // Reference: one cluster of 4 => 6 pairs.
        // Candidate splits it 2+2 => 2 preserved pairs.
        let reference = [Some(0), Some(0), Some(0), Some(0)];
        let candidate = [Some(0), Some(0), Some(1), Some(1)];
        assert!((recall(&reference, &candidate) - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn merging_clusters_does_not_reduce_recall() {
        // Recall only checks reference pairs; a merge preserves all of them.
        let reference = [Some(0), Some(0), Some(1), Some(1)];
        let candidate = [Some(0), Some(0), Some(0), Some(0)];
        assert_eq!(recall(&reference, &candidate), 1.0);
    }

    #[test]
    fn noise_in_candidate_loses_pairs() {
        let reference = [Some(0), Some(0), Some(0)];
        let candidate = [Some(0), Some(0), None];
        assert!((recall(&reference, &candidate) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn all_noise_reference_scores_one_by_convention() {
        let reference = [None, None, None];
        let candidate = [Some(0), Some(0), Some(0)];
        assert_eq!(recall(&reference, &candidate), 1.0);
    }

    #[test]
    fn empty_inputs_score_one() {
        assert_eq!(recall(&[], &[]), 1.0);
    }
}
