//! Contingency table between two clusterings.

use std::collections::HashMap;

/// Cross-tabulation of two assignments over the same points.
///
/// Cell `(r, c)` counts points placed in reference cluster `r` *and*
/// candidate cluster `c`; noise points contribute to marginals only through
/// the dedicated counters. Every pair-counting metric in this crate is a
/// few-line function over this table.
#[derive(Clone, Debug, Default)]
pub struct ContingencyTable {
    /// `(reference cluster, candidate cluster) -> count`.
    cells: HashMap<(u32, u32), u64>,
    /// Points per reference cluster (noise excluded).
    reference_sizes: HashMap<u32, u64>,
    /// Points per candidate cluster (noise excluded).
    candidate_sizes: HashMap<u32, u64>,
    /// Points that are noise in the reference.
    reference_noise: u64,
    /// Points that are noise in the candidate.
    candidate_noise: u64,
    /// Total points.
    total: u64,
}

impl ContingencyTable {
    /// Builds the table from two aligned assignment slices.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    pub fn new(reference: &[Option<u32>], candidate: &[Option<u32>]) -> Self {
        assert_eq!(
            reference.len(),
            candidate.len(),
            "clusterings must label the same points"
        );
        let mut table = Self {
            total: reference.len() as u64,
            ..Self::default()
        };
        for (&r, &c) in reference.iter().zip(candidate) {
            match r {
                Some(rc) => *table.reference_sizes.entry(rc).or_insert(0) += 1,
                None => table.reference_noise += 1,
            }
            match c {
                Some(cc) => *table.candidate_sizes.entry(cc).or_insert(0) += 1,
                None => table.candidate_noise += 1,
            }
            if let (Some(rc), Some(cc)) = (r, c) {
                *table.cells.entry((rc, cc)).or_insert(0) += 1;
            }
        }
        table
    }

    /// Iterates over `(reference, candidate, count)` cells.
    pub fn cells(&self) -> impl Iterator<Item = (u32, u32, u64)> + '_ {
        self.cells.iter().map(|(&(r, c), &n)| (r, c, n))
    }

    /// Sizes of the reference clusters.
    pub fn reference_sizes(&self) -> impl Iterator<Item = u64> + '_ {
        self.reference_sizes.values().copied()
    }

    /// Sizes of the candidate clusters.
    pub fn candidate_sizes(&self) -> impl Iterator<Item = u64> + '_ {
        self.candidate_sizes.values().copied()
    }

    /// Noise counts `(reference, candidate)`.
    pub fn noise_counts(&self) -> (u64, u64) {
        (self.reference_noise, self.candidate_noise)
    }

    /// Total number of points.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Same-cluster pairs in the reference: `Σ_r C(a_r, 2)`.
    pub fn reference_pairs(&self) -> u64 {
        self.reference_sizes.values().map(|&a| choose2(a)).sum()
    }

    /// Same-cluster pairs in the candidate: `Σ_c C(b_c, 2)`.
    pub fn candidate_pairs(&self) -> u64 {
        self.candidate_sizes.values().map(|&b| choose2(b)).sum()
    }

    /// Pairs clustered together in *both*: `Σ_{r,c} C(n_rc, 2)`.
    pub fn joint_pairs(&self) -> u64 {
        self.cells.values().map(|&n| choose2(n)).sum()
    }
}

/// `C(n, 2)` without overflow for the cardinalities we use.
pub(crate) fn choose2(n: u64) -> u64 {
    n * n.saturating_sub(1) / 2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_cells_and_marginals() {
        let reference = [Some(0), Some(0), Some(1), None];
        let candidate = [Some(5), Some(5), Some(5), Some(5)];
        let t = ContingencyTable::new(&reference, &candidate);
        assert_eq!(t.total(), 4);
        assert_eq!(t.noise_counts(), (1, 0));
        assert_eq!(t.reference_pairs(), 1); // C(2,2)=1, C(1,2)=0
        assert_eq!(t.candidate_pairs(), 6); // C(4,2)
        assert_eq!(t.joint_pairs(), 1); // cell (0,5) has 2 points
    }

    #[test]
    fn identical_clusterings_have_equal_pair_counts() {
        let labels = [Some(0), Some(0), Some(1), Some(1), Some(1), None];
        let t = ContingencyTable::new(&labels, &labels);
        assert_eq!(t.reference_pairs(), t.candidate_pairs());
        assert_eq!(t.reference_pairs(), t.joint_pairs());
        assert_eq!(t.joint_pairs(), 1 + 3);
    }

    #[test]
    fn choose2_basics() {
        assert_eq!(choose2(0), 0);
        assert_eq!(choose2(1), 0);
        assert_eq!(choose2(2), 1);
        assert_eq!(choose2(5), 10);
    }

    #[test]
    #[should_panic(expected = "same points")]
    fn mismatched_lengths_rejected() {
        let _ = ContingencyTable::new(&[None], &[None, None]);
    }

    #[test]
    fn empty_inputs() {
        let t = ContingencyTable::new(&[], &[]);
        assert_eq!(t.total(), 0);
        assert_eq!(t.reference_pairs(), 0);
        assert_eq!(t.joint_pairs(), 0);
    }
}
