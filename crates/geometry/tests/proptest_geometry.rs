//! Property tests for the geometric substrate.

use proptest::prelude::*;

use dbsvec_geometry::{euclidean, squared_euclidean, BoundingBox, PointSet};

fn vectors(d: usize) -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    (
        prop::collection::vec(-1e6..1e6f64, d),
        prop::collection::vec(-1e6..1e6f64, d),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn distance_is_a_metric_on_samples((a, b) in vectors(4), (c, _) in vectors(4)) {
        let ab = euclidean(&a, &b);
        let ba = euclidean(&b, &a);
        prop_assert_eq!(ab, ba, "symmetry");
        prop_assert!(ab >= 0.0, "non-negativity");
        prop_assert_eq!(euclidean(&a, &a), 0.0, "identity");
        // Triangle inequality with a float-scale tolerance.
        let ac = euclidean(&a, &c);
        let cb = euclidean(&c, &b);
        prop_assert!(ab <= ac + cb + 1e-6 * (1.0 + ab), "triangle");
    }

    #[test]
    fn squared_distance_is_consistent((a, b) in vectors(3)) {
        let d = euclidean(&a, &b);
        let d2 = squared_euclidean(&a, &b);
        prop_assert!((d * d - d2).abs() <= 1e-9 * (1.0 + d2));
    }

    #[test]
    fn bbox_distance_bounds_bracket_every_member(
        rows in prop::collection::vec(prop::collection::vec(-1e3..1e3f64, 3), 1..60),
        query in prop::collection::vec(-2e3..2e3f64, 3),
    ) {
        let ps = PointSet::from_rows(&rows);
        let bbox = ps.bounding_box().unwrap();
        for (_, p) in ps.iter() {
            let d2 = squared_euclidean(p, &query);
            prop_assert!(bbox.min_squared_distance(&query) <= d2 + 1e-9);
            prop_assert!(bbox.max_squared_distance(&query) >= d2 - 1e-9);
        }
    }

    #[test]
    fn bbox_union_contains_both(
        a in prop::collection::vec(prop::collection::vec(-1e3..1e3f64, 2), 1..20),
        b in prop::collection::vec(prop::collection::vec(-1e3..1e3f64, 2), 1..20),
    ) {
        let pa = PointSet::from_rows(&a);
        let pb = PointSet::from_rows(&b);
        let ba = pa.bounding_box().unwrap();
        let bb = pb.bounding_box().unwrap();
        let u = ba.union(&bb);
        for (_, p) in pa.iter().chain(pb.iter()) {
            prop_assert!(u.contains_point(p));
        }
        prop_assert!(u.volume() + 1e-12 >= ba.volume().max(bb.volume()));
    }

    #[test]
    fn overlap_volume_is_symmetric_and_bounded(
        lo1 in prop::collection::vec(-100.0..100.0f64, 2),
        ext1 in prop::collection::vec(0.0..50.0f64, 2),
        lo2 in prop::collection::vec(-100.0..100.0f64, 2),
        ext2 in prop::collection::vec(0.0..50.0f64, 2),
    ) {
        let hi1: Vec<f64> = lo1.iter().zip(&ext1).map(|(l, e)| l + e).collect();
        let hi2: Vec<f64> = lo2.iter().zip(&ext2).map(|(l, e)| l + e).collect();
        let a = BoundingBox::from_corners(lo1, hi1);
        let b = BoundingBox::from_corners(lo2, hi2);
        let ab = a.overlap_volume(&b);
        prop_assert!((ab - b.overlap_volume(&a)).abs() < 1e-9);
        prop_assert!(ab >= 0.0);
        prop_assert!(ab <= a.volume().min(b.volume()) + 1e-9);
    }

    #[test]
    fn subset_round_trips_coordinates(
        rows in prop::collection::vec(prop::collection::vec(-10.0..10.0f64, 2), 1..30),
        picks in prop::collection::vec(0usize..30, 0..10),
    ) {
        let ps = PointSet::from_rows(&rows);
        let ids: Vec<u32> =
            picks.into_iter().map(|k| (k % ps.len()) as u32).collect();
        let sub = ps.subset(&ids);
        prop_assert_eq!(sub.len(), ids.len());
        for (k, &id) in ids.iter().enumerate() {
            prop_assert_eq!(sub.point(k as u32), ps.point(id));
        }
    }
}
