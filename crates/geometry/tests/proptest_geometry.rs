//! Randomized property tests for the geometric substrate.
//!
//! Deterministic SplitMix64-driven instance loops: each test draws a fixed
//! number of random instances from a fixed seed, so every failure
//! reproduces exactly with no external test-framework dependency.

use dbsvec_geometry::rng::SplitMix64;
use dbsvec_geometry::{euclidean, squared_euclidean, BoundingBox, PointSet};

fn vector(rng: &mut SplitMix64, d: usize, lo: f64, hi: f64) -> Vec<f64> {
    (0..d).map(|_| rng.next_f64_range(lo, hi)).collect()
}

fn rows(rng: &mut SplitMix64, n: usize, d: usize, lo: f64, hi: f64) -> Vec<Vec<f64>> {
    (0..n).map(|_| vector(rng, d, lo, hi)).collect()
}

#[test]
fn distance_is_a_metric_on_samples() {
    let mut rng = SplitMix64::new(0xA11CE);
    for _ in 0..128 {
        let a = vector(&mut rng, 4, -1e6, 1e6);
        let b = vector(&mut rng, 4, -1e6, 1e6);
        let c = vector(&mut rng, 4, -1e6, 1e6);
        let ab = euclidean(&a, &b);
        let ba = euclidean(&b, &a);
        assert_eq!(ab, ba, "symmetry");
        assert!(ab >= 0.0, "non-negativity");
        assert_eq!(euclidean(&a, &a), 0.0, "identity");
        // Triangle inequality with a float-scale tolerance.
        let ac = euclidean(&a, &c);
        let cb = euclidean(&c, &b);
        assert!(ab <= ac + cb + 1e-6 * (1.0 + ab), "triangle");
    }
}

#[test]
fn squared_distance_is_consistent() {
    let mut rng = SplitMix64::new(0xB0B);
    for _ in 0..128 {
        let a = vector(&mut rng, 3, -1e6, 1e6);
        let b = vector(&mut rng, 3, -1e6, 1e6);
        let d = euclidean(&a, &b);
        let d2 = squared_euclidean(&a, &b);
        assert!((d * d - d2).abs() <= 1e-9 * (1.0 + d2));
    }
}

#[test]
fn bbox_distance_bounds_bracket_every_member() {
    let mut rng = SplitMix64::new(0xC0FFEE);
    for _ in 0..128 {
        let n = 1 + rng.next_below(59) as usize;
        let ps = PointSet::from_rows(&rows(&mut rng, n, 3, -1e3, 1e3));
        let query = vector(&mut rng, 3, -2e3, 2e3);
        let bbox = ps.bounding_box().unwrap();
        for (_, p) in ps.iter() {
            let d2 = squared_euclidean(p, &query);
            assert!(bbox.min_squared_distance(&query) <= d2 + 1e-9);
            assert!(bbox.max_squared_distance(&query) >= d2 - 1e-9);
        }
    }
}

#[test]
fn bbox_union_contains_both() {
    let mut rng = SplitMix64::new(0xD00D);
    for _ in 0..128 {
        let na = 1 + rng.next_below(19) as usize;
        let nb = 1 + rng.next_below(19) as usize;
        let pa = PointSet::from_rows(&rows(&mut rng, na, 2, -1e3, 1e3));
        let pb = PointSet::from_rows(&rows(&mut rng, nb, 2, -1e3, 1e3));
        let ba = pa.bounding_box().unwrap();
        let bb = pb.bounding_box().unwrap();
        let u = ba.union(&bb);
        for (_, p) in pa.iter().chain(pb.iter()) {
            assert!(u.contains_point(p));
        }
        assert!(u.volume() + 1e-12 >= ba.volume().max(bb.volume()));
    }
}

#[test]
fn overlap_volume_is_symmetric_and_bounded() {
    let mut rng = SplitMix64::new(0xE66);
    for _ in 0..128 {
        let lo1 = vector(&mut rng, 2, -100.0, 100.0);
        let ext1 = vector(&mut rng, 2, 0.0, 50.0);
        let lo2 = vector(&mut rng, 2, -100.0, 100.0);
        let ext2 = vector(&mut rng, 2, 0.0, 50.0);
        let hi1: Vec<f64> = lo1.iter().zip(&ext1).map(|(l, e)| l + e).collect();
        let hi2: Vec<f64> = lo2.iter().zip(&ext2).map(|(l, e)| l + e).collect();
        let a = BoundingBox::from_corners(lo1, hi1);
        let b = BoundingBox::from_corners(lo2, hi2);
        let ab = a.overlap_volume(&b);
        assert!((ab - b.overlap_volume(&a)).abs() < 1e-9);
        assert!(ab >= 0.0);
        assert!(ab <= a.volume().min(b.volume()) + 1e-9);
    }
}

#[test]
fn subset_round_trips_coordinates() {
    let mut rng = SplitMix64::new(0xF00);
    for _ in 0..128 {
        let n = 1 + rng.next_below(29) as usize;
        let ps = PointSet::from_rows(&rows(&mut rng, n, 2, -10.0, 10.0));
        let picks = rng.next_below(10) as usize;
        let ids: Vec<u32> = (0..picks)
            .map(|_| rng.next_below(ps.len() as u64) as u32)
            .collect();
        let sub = ps.subset(&ids);
        assert_eq!(sub.len(), ids.len());
        for (k, &id) in ids.iter().enumerate() {
            assert_eq!(sub.point(k as u32), ps.point(id));
        }
    }
}
