//! Axis-aligned bounding boxes in `R^d`.

/// An axis-aligned box `[min_0, max_0] x ... x [min_{d-1}, max_{d-1}]`.
///
/// Used by the kd-tree and R\*-tree for pruning: a subtree can be skipped for
/// an ε-range query exactly when [`BoundingBox::min_squared_distance`] to the
/// query point exceeds `ε^2`.
#[derive(Clone, Debug, PartialEq)]
pub struct BoundingBox {
    min: Vec<f64>,
    max: Vec<f64>,
}

impl BoundingBox {
    /// A degenerate box covering exactly one point.
    pub fn around_point(p: &[f64]) -> Self {
        Self {
            min: p.to_vec(),
            max: p.to_vec(),
        }
    }

    /// A box from explicit corner vectors.
    ///
    /// # Panics
    ///
    /// Panics if the corners differ in length or `min[i] > max[i]` for some i.
    pub fn from_corners(min: Vec<f64>, max: Vec<f64>) -> Self {
        assert_eq!(min.len(), max.len(), "corner dimensionality mismatch");
        for (lo, hi) in min.iter().zip(&max) {
            assert!(lo <= hi, "min corner must not exceed max corner");
        }
        Self { min, max }
    }

    /// Lower corner.
    #[inline]
    pub fn min(&self) -> &[f64] {
        &self.min
    }

    /// Upper corner.
    #[inline]
    pub fn max(&self) -> &[f64] {
        &self.max
    }

    /// Dimensionality of the box.
    #[inline]
    pub fn dims(&self) -> usize {
        self.min.len()
    }

    /// Grows the box so it covers `p`.
    pub fn expand_to_point(&mut self, p: &[f64]) {
        debug_assert_eq!(p.len(), self.dims());
        for ((lo, hi), &x) in self.min.iter_mut().zip(&mut self.max).zip(p) {
            if x < *lo {
                *lo = x;
            }
            if x > *hi {
                *hi = x;
            }
        }
    }

    /// Grows the box so it covers `other`.
    pub fn expand_to_box(&mut self, other: &BoundingBox) {
        debug_assert_eq!(other.dims(), self.dims());
        for ((lo, hi), (olo, ohi)) in self
            .min
            .iter_mut()
            .zip(&mut self.max)
            .zip(other.min.iter().zip(&other.max))
        {
            if *olo < *lo {
                *lo = *olo;
            }
            if *ohi > *hi {
                *hi = *ohi;
            }
        }
    }

    /// The union of two boxes without mutating either.
    pub fn union(&self, other: &BoundingBox) -> BoundingBox {
        let mut out = self.clone();
        out.expand_to_box(other);
        out
    }

    /// Whether `p` lies inside the closed box.
    pub fn contains_point(&self, p: &[f64]) -> bool {
        self.min
            .iter()
            .zip(&self.max)
            .zip(p)
            .all(|((lo, hi), &x)| *lo <= x && x <= *hi)
    }

    /// Squared distance from `p` to the nearest point of the box
    /// (zero when `p` is inside).
    #[inline]
    pub fn min_squared_distance(&self, p: &[f64]) -> f64 {
        debug_assert_eq!(p.len(), self.dims());
        let mut acc = 0.0;
        for ((lo, hi), &x) in self.min.iter().zip(&self.max).zip(p) {
            let diff = if x < *lo {
                *lo - x
            } else if x > *hi {
                x - *hi
            } else {
                0.0
            };
            acc += diff * diff;
        }
        acc
    }

    /// Whether the closed ball `{q : ||q - center|| <= radius}` intersects the box.
    #[inline]
    pub fn intersects_ball(&self, center: &[f64], radius: f64) -> bool {
        self.min_squared_distance(center) <= radius * radius
    }

    /// Squared distance from `p` to the farthest point of the box.
    ///
    /// When this is `<= ε²` the whole box lies inside the query ball, so a
    /// range query can report an entire subtree without per-point distance
    /// checks — a large win for the wide-ε sweeps of the paper's Fig. 7.
    #[inline]
    pub fn max_squared_distance(&self, p: &[f64]) -> f64 {
        debug_assert_eq!(p.len(), self.dims());
        let mut acc = 0.0;
        for ((lo, hi), &x) in self.min.iter().zip(&self.max).zip(p) {
            let diff = (x - *lo).abs().max((x - *hi).abs());
            acc += diff * diff;
        }
        acc
    }

    /// Whether the box lies entirely inside the closed ball.
    #[inline]
    pub fn inside_ball(&self, center: &[f64], radius: f64) -> bool {
        self.max_squared_distance(center) <= radius * radius
    }

    /// Hyper-volume of the box (product of edge lengths).
    pub fn volume(&self) -> f64 {
        self.min
            .iter()
            .zip(&self.max)
            .map(|(lo, hi)| hi - lo)
            .product()
    }

    /// Half the surface measure used by the R\*-tree split heuristic:
    /// the sum of edge lengths ("margin").
    pub fn margin(&self) -> f64 {
        self.min.iter().zip(&self.max).map(|(lo, hi)| hi - lo).sum()
    }

    /// Volume of the intersection of two boxes (zero when disjoint).
    pub fn overlap_volume(&self, other: &BoundingBox) -> f64 {
        debug_assert_eq!(other.dims(), self.dims());
        let mut vol = 1.0;
        for ((alo, ahi), (blo, bhi)) in self
            .min
            .iter()
            .zip(&self.max)
            .zip(other.min.iter().zip(&other.max))
        {
            let lo = alo.max(*blo);
            let hi = ahi.min(*bhi);
            if lo >= hi {
                return 0.0;
            }
            vol *= hi - lo;
        }
        vol
    }

    /// Center of the box.
    pub fn center(&self) -> Vec<f64> {
        self.min
            .iter()
            .zip(&self.max)
            .map(|(lo, hi)| 0.5 * (lo + hi))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_box() -> BoundingBox {
        BoundingBox::from_corners(vec![0.0, 0.0], vec![1.0, 1.0])
    }

    #[test]
    fn around_point_is_degenerate() {
        let bb = BoundingBox::around_point(&[2.0, 3.0]);
        assert_eq!(bb.min(), bb.max());
        assert_eq!(bb.volume(), 0.0);
        assert!(bb.contains_point(&[2.0, 3.0]));
    }

    #[test]
    #[should_panic(expected = "min corner must not exceed")]
    fn inverted_corners_rejected() {
        let _ = BoundingBox::from_corners(vec![1.0], vec![0.0]);
    }

    #[test]
    fn expand_covers_new_points() {
        let mut bb = BoundingBox::around_point(&[0.0, 0.0]);
        bb.expand_to_point(&[-1.0, 2.0]);
        bb.expand_to_point(&[3.0, -4.0]);
        assert_eq!(bb.min(), &[-1.0, -4.0]);
        assert_eq!(bb.max(), &[3.0, 2.0]);
    }

    #[test]
    fn min_squared_distance_inside_is_zero() {
        let bb = unit_box();
        assert_eq!(bb.min_squared_distance(&[0.5, 0.5]), 0.0);
        assert_eq!(bb.min_squared_distance(&[0.0, 1.0]), 0.0);
    }

    #[test]
    fn min_squared_distance_outside_is_to_nearest_face_or_corner() {
        let bb = unit_box();
        assert!((bb.min_squared_distance(&[2.0, 0.5]) - 1.0).abs() < 1e-12);
        assert!((bb.min_squared_distance(&[2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!((bb.min_squared_distance(&[-3.0, 0.5]) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn ball_intersection() {
        let bb = unit_box();
        assert!(bb.intersects_ball(&[2.0, 0.5], 1.0));
        assert!(!bb.intersects_ball(&[2.0, 0.5], 0.99));
        assert!(bb.intersects_ball(&[0.5, 0.5], 0.0));
    }

    #[test]
    fn union_and_overlap() {
        let a = unit_box();
        let b = BoundingBox::from_corners(vec![0.5, 0.5], vec![2.0, 2.0]);
        let u = a.union(&b);
        assert_eq!(u.min(), &[0.0, 0.0]);
        assert_eq!(u.max(), &[2.0, 2.0]);
        assert!((a.overlap_volume(&b) - 0.25).abs() < 1e-12);
        let disjoint = BoundingBox::from_corners(vec![5.0, 5.0], vec![6.0, 6.0]);
        assert_eq!(a.overlap_volume(&disjoint), 0.0);
    }

    #[test]
    fn max_squared_distance_is_to_farthest_corner() {
        let bb = unit_box();
        // From the origin corner, the farthest point is (1, 1).
        assert!((bb.max_squared_distance(&[0.0, 0.0]) - 2.0).abs() < 1e-12);
        // From outside, farthest is the opposite corner.
        assert!((bb.max_squared_distance(&[2.0, 0.0]) - (4.0 + 1.0)).abs() < 1e-12);
    }

    #[test]
    fn inside_ball_detects_full_containment() {
        let bb = unit_box();
        assert!(bb.inside_ball(&[0.5, 0.5], 1.0));
        assert!(!bb.inside_ball(&[0.5, 0.5], 0.5));
    }

    #[test]
    fn volume_margin_center() {
        let bb = BoundingBox::from_corners(vec![0.0, 0.0, 0.0], vec![1.0, 2.0, 3.0]);
        assert!((bb.volume() - 6.0).abs() < 1e-12);
        assert!((bb.margin() - 6.0).abs() < 1e-12);
        assert_eq!(bb.center(), vec![0.5, 1.0, 1.5]);
    }
}
