//! A minimal deterministic RNG shared by the whole workspace.
//!
//! Every generator in the workspace — dataset synthesis, k-means++ seeding,
//! LSH projections, randomized tests — draws from this module, so the build
//! carries no external RNG dependency and every artifact is reproducible
//! from a single `u64` seed. SplitMix64 is the standard seeding generator
//! from Steele et al., "Fast Splittable Pseudorandom Number Generators"
//! (OOPSLA 2014): tiny state, full 2^64 period, passes BigCrush when used
//! as specified.

/// SplitMix64 pseudorandom generator.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)` with 53 random bits.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` (Lemire rejection-free approximation
    /// via 128-bit multiply; bias is < 2^-64 and irrelevant for tie-breaks).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[lo, hi)`. Degenerate ranges (`hi <= lo`) return `lo`.
    #[inline]
    pub fn next_f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            return lo;
        }
        lo + (hi - lo) * self.next_f64()
    }

    /// Standard normal draw (mean 0, variance 1) via Box–Muller.
    #[inline]
    pub fn next_normal(&mut self) -> f64 {
        // Guard against ln(0): map 0 to the smallest positive subnormal step.
        let u1 = self.next_f64().max(f64::MIN_POSITIVE);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_is_near_half() {
        let mut rng = SplitMix64::new(9);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }

    #[test]
    fn next_below_respects_bound() {
        let mut rng = SplitMix64::new(3);
        for _ in 0..10_000 {
            assert!(rng.next_below(17) < 17);
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        SplitMix64::new(0).next_below(0);
    }

    #[test]
    fn range_stays_inside_bounds() {
        let mut rng = SplitMix64::new(11);
        for _ in 0..10_000 {
            let x = rng.next_f64_range(-3.0, 5.5);
            assert!((-3.0..5.5).contains(&x));
        }
        assert_eq!(rng.next_f64_range(2.0, 2.0), 2.0);
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = SplitMix64::new(13);
        let n = 100_000;
        let draws: Vec<f64> = (0..n).map(|_| rng.next_normal()).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean} too far from 0");
        assert!((var - 1.0).abs() < 0.05, "variance {var} too far from 1");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SplitMix64::new(17);
        let mut data: Vec<u32> = (0..1000).collect();
        rng.shuffle(&mut data);
        let mut sorted = data.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..1000).collect::<Vec<u32>>());
        assert_ne!(data, sorted, "shuffle left 1000 elements in order");
    }
}
