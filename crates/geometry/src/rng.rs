//! A minimal deterministic RNG for internal tie-breaking.
//!
//! The heavyweight generators in `dbsvec-datasets` and `dbsvec-lsh` use the
//! `rand` crate; this module exists for the few places inside algorithm
//! crates (e.g. SMO tie-breaks, sampling in k-means tests) where pulling in
//! `rand` as a dependency of a core crate is not worth it. SplitMix64 is the
//! standard seeding generator from Steele et al., "Fast Splittable
//! Pseudorandom Number Generators" (OOPSLA 2014): tiny state, full 2^64
//! period, passes BigCrush when used as specified.

/// SplitMix64 pseudorandom generator.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)` with 53 random bits.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` (Lemire rejection-free approximation
    /// via 128-bit multiply; bias is < 2^-64 and irrelevant for tie-breaks).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_is_near_half() {
        let mut rng = SplitMix64::new(9);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }

    #[test]
    fn next_below_respects_bound() {
        let mut rng = SplitMix64::new(3);
        for _ in 0..10_000 {
            assert!(rng.next_below(17) < 17);
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        SplitMix64::new(0).next_below(0);
    }
}
