//! Geometric substrate shared by every crate in the DBSVEC workspace.
//!
//! The central type is [`PointSet`]: a dense, row-major collection of
//! `d`-dimensional points backed by a single flat `Vec<f64>`. All clustering
//! algorithms in the workspace address points by [`PointId`] and borrow
//! coordinate slices out of one `PointSet`, which keeps hot distance loops
//! cache-friendly and avoids per-point allocations.
//!
//! The crate also provides:
//!
//! * [`distance`] — Euclidean distance kernels used by the range-query
//!   engines and the SVDD Gaussian kernel,
//! * [`bbox::BoundingBox`] — axis-aligned boxes used by the kd-tree, R\*-tree
//!   and grid indexes,
//! * a tiny splitmix-based deterministic RNG ([`rng::SplitMix64`]) used where
//!   a dependency on `rand` would be overkill.

pub mod bbox;
pub mod distance;
pub mod pointset;
pub mod rng;

pub use bbox::BoundingBox;
pub use distance::{euclidean, squared_euclidean};
pub use pointset::{PointId, PointSet};
