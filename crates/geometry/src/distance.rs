//! Euclidean distance kernels.
//!
//! These free functions are the innermost loops of every range query and
//! every Gaussian-kernel evaluation in the workspace, so they are written to
//! auto-vectorize: a single pass over two equal-length slices with no
//! branches in the loop body.

/// Squared Euclidean distance `||a - b||^2`.
///
/// Preferred in hot paths: range predicates compare against `eps^2` and the
/// Gaussian kernel consumes the squared distance directly, so the `sqrt` is
/// almost never needed.
///
/// # Panics
///
/// Panics (in debug builds) if the slices differ in length; in release the
/// shorter length wins, which is never exercised by workspace callers because
/// all points come from one [`crate::PointSet`].
#[inline]
pub fn squared_euclidean(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0;
    for (&x, &y) in a.iter().zip(b.iter()) {
        let diff = x - y;
        acc += diff * diff;
    }
    acc
}

/// Euclidean distance `||a - b||`.
#[inline]
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    squared_euclidean(a, b).sqrt()
}

/// Squared Euclidean norm `||a||^2`.
#[inline]
pub fn squared_norm(a: &[f64]) -> f64 {
    a.iter().map(|&x| x * x).sum()
}

/// Dot product `a · b`.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b.iter()).map(|(&x, &y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn squared_euclidean_matches_hand_computation() {
        assert_eq!(squared_euclidean(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(squared_euclidean(&[1.0], &[1.0]), 0.0);
        assert_eq!(squared_euclidean(&[-1.0, 2.0], &[1.0, -2.0]), 4.0 + 16.0);
    }

    #[test]
    fn euclidean_is_sqrt_of_squared() {
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, 6.0, 3.0];
        assert!((euclidean(&a, &b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn distance_to_self_is_zero() {
        let a = [0.3, -7.5, 2.25];
        assert_eq!(squared_euclidean(&a, &a), 0.0);
    }

    #[test]
    fn dot_and_norm_agree() {
        let a = [1.0, -2.0, 0.5];
        assert!((dot(&a, &a) - squared_norm(&a)).abs() < 1e-15);
        assert_eq!(dot(&[1.0, 0.0], &[0.0, 1.0]), 0.0);
    }

    #[test]
    fn symmetry() {
        let a = [0.1, 0.9, -4.0];
        let b = [2.0, -1.0, 3.5];
        assert_eq!(squared_euclidean(&a, &b), squared_euclidean(&b, &a));
    }
}
