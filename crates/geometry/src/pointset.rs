//! Dense row-major storage for a set of `d`-dimensional points.

use crate::bbox::BoundingBox;
use crate::distance::squared_euclidean;

/// Identifier of a point inside a [`PointSet`].
///
/// `u32` keeps per-point bookkeeping structures (cluster labels, index node
/// entries, neighbor lists) half the size of `usize` on 64-bit targets, which
/// matters at the 10M-point cardinalities the DBSVEC paper evaluates.
pub type PointId = u32;

/// A set of `n` points in `R^d`, stored row-major in one flat buffer.
///
/// Invariants:
/// * `data.len() == n * dims`
/// * `dims >= 1`
/// * `n <= u32::MAX` so every point is addressable by [`PointId`]
///
/// # Examples
///
/// ```
/// use dbsvec_geometry::PointSet;
///
/// let mut ps = PointSet::new(2);
/// ps.push(&[0.0, 0.0]);
/// ps.push(&[3.0, 4.0]);
/// assert_eq!(ps.len(), 2);
/// assert_eq!(ps.point(1), &[3.0, 4.0]);
/// assert!((ps.distance(0, 1) - 5.0).abs() < 1e-12);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct PointSet {
    dims: usize,
    data: Vec<f64>,
}

impl PointSet {
    /// Creates an empty point set of dimensionality `dims`.
    ///
    /// # Panics
    ///
    /// Panics if `dims == 0`.
    pub fn new(dims: usize) -> Self {
        assert!(dims >= 1, "PointSet dimensionality must be at least 1");
        Self {
            dims,
            data: Vec::new(),
        }
    }

    /// Creates an empty point set with room for `capacity` points.
    pub fn with_capacity(dims: usize, capacity: usize) -> Self {
        assert!(dims >= 1, "PointSet dimensionality must be at least 1");
        Self {
            dims,
            data: Vec::with_capacity(dims * capacity),
        }
    }

    /// Builds a point set from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` is not a multiple of `dims` or if the point
    /// count would exceed `u32::MAX`.
    pub fn from_flat(dims: usize, data: Vec<f64>) -> Self {
        assert!(dims >= 1, "PointSet dimensionality must be at least 1");
        assert!(
            data.len() % dims == 0,
            "flat buffer length {} is not a multiple of dims {}",
            data.len(),
            dims
        );
        assert!(
            data.len() / dims <= u32::MAX as usize,
            "PointSet cannot hold more than u32::MAX points"
        );
        Self { dims, data }
    }

    /// Builds a point set from per-point rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows do not all share the same nonzero length.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "from_rows requires at least one row");
        let dims = rows[0].len();
        let mut ps = Self::with_capacity(dims, rows.len());
        for row in rows {
            ps.push(row);
        }
        ps
    }

    /// Appends one point and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `coords.len() != self.dims()` or the set is full.
    pub fn push(&mut self, coords: &[f64]) -> PointId {
        assert_eq!(
            coords.len(),
            self.dims,
            "point has {} coordinates but the set is {}-dimensional",
            coords.len(),
            self.dims
        );
        let id = self.len();
        assert!(
            id <= u32::MAX as usize,
            "PointSet cannot hold more than u32::MAX points"
        );
        self.data.extend_from_slice(coords);
        id as PointId
    }

    /// Number of points in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len() / self.dims
    }

    /// Whether the set contains no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Dimensionality `d` of the points.
    #[inline]
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Borrows the coordinates of point `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    pub fn point(&self, id: PointId) -> &[f64] {
        let start = id as usize * self.dims;
        &self.data[start..start + self.dims]
    }

    /// Mutably borrows the coordinates of point `id`.
    #[inline]
    pub fn point_mut(&mut self, id: PointId) -> &mut [f64] {
        let start = id as usize * self.dims;
        &mut self.data[start..start + self.dims]
    }

    /// The underlying flat row-major buffer.
    #[inline]
    pub fn as_flat(&self) -> &[f64] {
        &self.data
    }

    /// Iterates over `(id, coords)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (PointId, &[f64])> {
        self.data
            .chunks_exact(self.dims)
            .enumerate()
            .map(|(i, chunk)| (i as PointId, chunk))
    }

    /// Euclidean distance between points `a` and `b`.
    #[inline]
    pub fn distance(&self, a: PointId, b: PointId) -> f64 {
        self.squared_distance(a, b).sqrt()
    }

    /// Squared Euclidean distance between points `a` and `b`.
    #[inline]
    pub fn squared_distance(&self, a: PointId, b: PointId) -> f64 {
        squared_euclidean(self.point(a), self.point(b))
    }

    /// Squared Euclidean distance between point `a` and an arbitrary query.
    #[inline]
    pub fn squared_distance_to(&self, a: PointId, query: &[f64]) -> f64 {
        squared_euclidean(self.point(a), query)
    }

    /// The tight axis-aligned bounding box of the whole set.
    ///
    /// Returns `None` for an empty set.
    pub fn bounding_box(&self) -> Option<BoundingBox> {
        if self.is_empty() {
            return None;
        }
        let mut bb = BoundingBox::around_point(self.point(0));
        for (_, p) in self.iter().skip(1) {
            bb.expand_to_point(p);
        }
        Some(bb)
    }

    /// The coordinate-wise mean (centroid) of the whole set.
    ///
    /// Returns `None` for an empty set.
    pub fn centroid(&self) -> Option<Vec<f64>> {
        if self.is_empty() {
            return None;
        }
        let mut acc = vec![0.0; self.dims];
        for (_, p) in self.iter() {
            for (a, &x) in acc.iter_mut().zip(p) {
                *a += x;
            }
        }
        let n = self.len() as f64;
        for a in &mut acc {
            *a /= n;
        }
        Some(acc)
    }

    /// Copies a subset of points into a new `PointSet`, preserving order.
    ///
    /// # Panics
    ///
    /// Panics if any id is out of range.
    pub fn subset(&self, ids: &[PointId]) -> PointSet {
        let mut out = PointSet::with_capacity(self.dims, ids.len());
        for &id in ids {
            out.push(self.point(id));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read_back() {
        let mut ps = PointSet::new(3);
        let a = ps.push(&[1.0, 2.0, 3.0]);
        let b = ps.push(&[4.0, 5.0, 6.0]);
        assert_eq!(a, 0);
        assert_eq!(b, 1);
        assert_eq!(ps.len(), 2);
        assert_eq!(ps.dims(), 3);
        assert_eq!(ps.point(0), &[1.0, 2.0, 3.0]);
        assert_eq!(ps.point(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn from_flat_round_trips() {
        let ps = PointSet::from_flat(2, vec![0.0, 1.0, 2.0, 3.0]);
        assert_eq!(ps.len(), 2);
        assert_eq!(ps.point(1), &[2.0, 3.0]);
        assert_eq!(ps.as_flat(), &[0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn from_flat_rejects_ragged_buffer() {
        let _ = PointSet::from_flat(3, vec![0.0; 7]);
    }

    #[test]
    #[should_panic(expected = "dimensionality must be at least 1")]
    fn zero_dims_rejected() {
        let _ = PointSet::new(0);
    }

    #[test]
    #[should_panic(expected = "coordinates")]
    fn push_rejects_wrong_arity() {
        let mut ps = PointSet::new(2);
        ps.push(&[1.0]);
    }

    #[test]
    fn distance_is_euclidean() {
        let mut ps = PointSet::new(2);
        ps.push(&[0.0, 0.0]);
        ps.push(&[3.0, 4.0]);
        assert!((ps.distance(0, 1) - 5.0).abs() < 1e-12);
        assert!((ps.squared_distance(0, 1) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn iter_yields_all_points_in_order() {
        let ps = PointSet::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]);
        let collected: Vec<(PointId, f64)> = ps.iter().map(|(id, p)| (id, p[0])).collect();
        assert_eq!(collected, vec![(0, 1.0), (1, 2.0), (2, 3.0)]);
    }

    #[test]
    fn bounding_box_is_tight() {
        let ps = PointSet::from_rows(&[vec![1.0, -5.0], vec![-2.0, 7.0], vec![0.5, 0.0]]);
        let bb = ps.bounding_box().unwrap();
        assert_eq!(bb.min(), &[-2.0, -5.0]);
        assert_eq!(bb.max(), &[1.0, 7.0]);
    }

    #[test]
    fn bounding_box_of_empty_set_is_none() {
        assert!(PointSet::new(4).bounding_box().is_none());
        assert!(PointSet::new(4).centroid().is_none());
    }

    #[test]
    fn centroid_is_mean() {
        let ps = PointSet::from_rows(&[vec![0.0, 0.0], vec![2.0, 4.0]]);
        assert_eq!(ps.centroid().unwrap(), vec![1.0, 2.0]);
    }

    #[test]
    fn subset_preserves_order_and_coords() {
        let ps = PointSet::from_rows(&[vec![0.0], vec![1.0], vec![2.0], vec![3.0]]);
        let sub = ps.subset(&[3, 1]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.point(0), &[3.0]);
        assert_eq!(sub.point(1), &[1.0]);
    }

    #[test]
    fn point_mut_updates_in_place() {
        let mut ps = PointSet::from_rows(&[vec![0.0, 0.0]]);
        ps.point_mut(0)[1] = 9.0;
        assert_eq!(ps.point(0), &[0.0, 9.0]);
    }
}
