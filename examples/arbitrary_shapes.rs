//! Arbitrary-shape clustering: the claim that motivates density methods.
//!
//! Runs DBSVEC and k-means on the two classic non-convex benchmarks — two
//! moons and interleaved spirals — and writes SVG scatter plots of every
//! result to `results/`. k-means (spherical clusters by construction) cuts
//! the shapes apart; DBSVEC follows them exactly, at a fraction of
//! DBSCAN's range queries.
//!
//! ```text
//! cargo run --release --example arbitrary_shapes
//! ```

use std::path::Path;

use dbsvec::baselines::KMeans;
use dbsvec::datasets::{spirals, two_moons, write_svg_scatter, Dataset};
use dbsvec::metrics::{adjusted_rand_index, recall};
use dbsvec::{Dbsvec, DbsvecConfig};

fn evaluate(name: &str, data: &Dataset, eps: f64, min_pts: usize, k: usize) {
    let dbsvec = Dbsvec::new(DbsvecConfig::new(eps, min_pts)).fit(&data.points);
    let kmeans = KMeans::new(k, 7).fit(&data.points);

    let r_dbsvec = recall(&data.truth, dbsvec.labels().assignments());
    let r_kmeans = recall(&data.truth, kmeans.clustering.assignments());
    let ari_dbsvec = adjusted_rand_index(&data.truth, dbsvec.labels().assignments());
    let ari_kmeans = adjusted_rand_index(&data.truth, kmeans.clustering.assignments());

    println!("{name}:");
    println!(
        "  DBSVEC:  {} clusters, recall {:.3}, ARI {:.3}, theta {:.3}",
        dbsvec.num_clusters(),
        r_dbsvec,
        ari_dbsvec,
        dbsvec.stats().theta(data.len())
    );
    println!(
        "  k-MEANS: {} clusters, recall {:.3}, ARI {:.3}",
        kmeans.clustering.num_clusters(),
        r_kmeans,
        ari_kmeans
    );

    std::fs::create_dir_all("results").expect("create results dir");
    let svg_a = format!("results/shapes_{name}_dbsvec.svg");
    let svg_b = format!("results/shapes_{name}_kmeans.svg");
    write_svg_scatter(
        Path::new(&svg_a),
        &data.points,
        dbsvec.labels().assignments(),
        600,
    )
    .expect("write dbsvec svg");
    write_svg_scatter(
        Path::new(&svg_b),
        &data.points,
        kmeans.clustering.assignments(),
        600,
    )
    .expect("write kmeans svg");
    println!("  plots: {svg_a}, {svg_b}");

    assert!(
        ari_dbsvec > ari_kmeans,
        "{name}: density clustering must beat k-means on non-convex shapes"
    );
}

fn main() {
    let moons = two_moons(3000, 0.05, 11);
    evaluate("moons", &moons, 0.12, 6, 2);

    let spiral = spirals(4000, 3, 1.25, 0.012, 13);
    evaluate("spirals", &spiral, 0.07, 6, 3);

    println!("\nok: DBSVEC traced both non-convex shapes; k-means could not");
}
