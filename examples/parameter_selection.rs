//! Choosing ε — and what to do when no single ε exists.
//!
//! Walks the standard DBSCAN parameterization workflow on mixed-density
//! data: derive ε from the k-distance knee (Schubert et al. 2017, cited by
//! the paper), cluster with DBSVEC, and observe the single-ε limitation —
//! a much looser cluster is invisible at the knee ε. HDBSCAN, which
//! operates on every density level at once, recovers both.
//!
//! ```text
//! cargo run --release --example parameter_selection
//! ```

use dbsvec::baselines::Hdbscan;
use dbsvec::datasets::gaussian_mixture;
use dbsvec::geometry::rng::SplitMix64;
use dbsvec::index::{k_distance_profile, knee_epsilon, KdTree};
use dbsvec::{Dbsvec, DbsvecConfig, PointSet};

fn main() {
    // A tight cluster and a 20x looser one.
    let tight = gaussian_mixture(600, 2, 1, 1.0, 100.0, 5);
    let mut points = PointSet::new(2);
    for (_, p) in tight.points.iter() {
        points.push(p);
    }
    let mut rng = SplitMix64::new(9);
    let normal = |rng: &mut SplitMix64| -> f64 {
        let u1 = rng.next_f64().max(f64::MIN_POSITIVE);
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * rng.next_f64()).cos()
    };
    for _ in 0..200 {
        points.push(&[500.0 + 30.0 * normal(&mut rng), 30.0 * normal(&mut rng)]);
    }
    println!("data: one tight cluster (sigma=1, n=600) + one loose cluster (sigma=30, n=200)");

    // ---- Step 1: the k-distance profile and its knee.
    let min_pts = 8;
    let index = KdTree::build(&points);
    let profile = k_distance_profile(&points, &index, min_pts, 600);
    let eps = knee_epsilon(&profile).expect("profile long enough for a knee");
    println!("k-distance knee (k = {min_pts}): eps = {eps:.2}");

    // ---- Step 2: DBSVEC at the knee ε.
    let single_eps = Dbsvec::new(DbsvecConfig::new(eps, min_pts)).fit(&points);
    println!(
        "DBSVEC at knee eps: {} clusters, {} noise",
        single_eps.num_clusters(),
        single_eps.labels().noise_count()
    );
    let loose_noise = (600..800)
        .filter(|&i| single_eps.labels().is_noise(i))
        .count();
    println!("  -> {loose_noise}/200 loose-cluster points misread as noise");

    // ---- Step 3: the hierarchy sees both densities.
    let hierarchical = Hdbscan::new(min_pts, 25).fit(&points);
    println!(
        "HDBSCAN: {} clusters, {} noise",
        hierarchical.clustering.num_clusters(),
        hierarchical.clustering.noise_count()
    );

    assert_eq!(hierarchical.clustering.num_clusters(), 2);
    assert!(
        loose_noise > 50,
        "the knee eps should underfit the loose cluster (got {loose_noise})"
    );
    let hdbscan_loose_noise = (600..800)
        .filter(|&i| hierarchical.clustering.is_noise(i))
        .count();
    assert!(
        hdbscan_loose_noise < loose_noise,
        "the hierarchy must do better"
    );
    println!("\nok: knee-derived eps fits the dominant density; HDBSCAN recovers both");
}
