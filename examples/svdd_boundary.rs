//! Visualizing support vector expansion (the paper's Fig. 3).
//!
//! Reproduces the running-example figure: an expanding sub-cluster, the
//! SVDD model trained on it, the support vectors (hollow red circles), and
//! the dashed decision boundary — "the high-dimensional sphere mapped back
//! to the original space". The rendering is written to
//! `results/svdd_boundary.svg`.
//!
//! ```text
//! cargo run --release --example svdd_boundary
//! ```

use std::path::Path;

use dbsvec::datasets::plot::write_svg_scatter_with_overlay;
use dbsvec::datasets::two_moons;
use dbsvec::svdd::{
    decision_boundary_around_targets, kernel_width_center_radius, optimal_nu, GaussianKernel,
    SvddProblem,
};
use dbsvec::PointId;

fn main() {
    // One non-convex "sub-cluster": the upper moon.
    let data = two_moons(1200, 0.04, 7);
    let sub_cluster: Vec<PointId> = data
        .truth
        .iter()
        .enumerate()
        .filter(|(_, t)| **t == Some(0))
        .map(|(i, _)| i as u32)
        .collect();
    println!("sub-cluster: {} points (the upper moon)", sub_cluster.len());

    // Train SVDD exactly as DBSVEC does: σ = r/√2, ν = ν*.
    let sigma = kernel_width_center_radius(&data.points, &sub_cluster);
    let nu = optimal_nu(2, sub_cluster.len(), 10);
    let kernel = GaussianKernel::from_width(sigma);
    let model = SvddProblem::new(&data.points, &sub_cluster, kernel)
        .with_nu(nu)
        .solve();
    let svs = model.support_vectors();
    println!(
        "SVDD: sigma = {sigma:.3}, nu = {nu:.4}, {} support vectors of {} points",
        svs.len(),
        sub_cluster.len()
    );

    // Extract the decision boundary and render everything.
    let segments = decision_boundary_around_targets(&model, &data.points, 0.4, 160);
    println!("boundary: {} marching-squares segments", segments.len());

    // Color: sub-cluster = cluster 0, the other moon = noise-gray context.
    let labels: Vec<Option<u32>> = data
        .truth
        .iter()
        .map(|t| if *t == Some(0) { Some(0) } else { None })
        .collect();
    std::fs::create_dir_all("results").expect("create results dir");
    write_svg_scatter_with_overlay(
        Path::new("results/svdd_boundary.svg"),
        &data.points,
        &labels,
        &segments,
        &svs,
        800,
    )
    .expect("write svg");
    println!("rendered: results/svdd_boundary.svg");

    // Sanity: the boundary hugs the moon — every sub-cluster point is
    // inside the described domain, the other moon's tips are outside.
    let inside = sub_cluster
        .iter()
        .filter(|&&id| model.contains(&data.points, data.points.point(id)))
        .count();
    println!(
        "{inside}/{} sub-cluster points inside the described domain",
        sub_cluster.len()
    );
    assert!(inside as f64 >= 0.95 * sub_cluster.len() as f64);
    assert!(!svs.is_empty() && svs.len() < sub_cluster.len() / 4);
    println!("\nok: SVDD described the non-convex sub-cluster with a small SV set");
}
