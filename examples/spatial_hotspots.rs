//! Spatial hotspot detection on map-like location data.
//!
//! The DBSVEC paper motivates density-based clustering with spatial data
//! analysis (its accuracy experiments use the Mopsi location datasets).
//! This example generates a Joensuu-like set of 2-D locations along
//! trajectories, finds the dense hotspots with both exact DBSCAN and
//! DBSVEC, and shows that DBSVEC reproduces DBSCAN's hotspots with a small
//! fraction of the range queries.
//!
//! ```text
//! cargo run --release --example spatial_hotspots
//! ```

use std::time::Instant;

use dbsvec::baselines::Dbscan;
use dbsvec::datasets::OpenDataset;
use dbsvec::metrics::{adjusted_rand_index, recall};
use dbsvec::{Dbsvec, DbsvecConfig};

fn main() {
    let standin = OpenDataset::MapJoensuu.generate(7);
    let points = &standin.dataset.points;
    let eps = standin.suggested.eps;
    let min_pts = standin.suggested.min_pts;
    println!(
        "dataset: {} locations ({}), eps={eps:.0}, MinPts={min_pts}",
        points.len(),
        standin.name
    );

    let t0 = Instant::now();
    let dbscan = Dbscan::new(eps, min_pts).fit(points);
    let dbscan_time = t0.elapsed();

    let t1 = Instant::now();
    let dbsvec = Dbsvec::new(DbsvecConfig::new(eps, min_pts)).fit(points);
    let dbsvec_time = t1.elapsed();

    println!();
    println!(
        "DBSCAN:  {} hotspots, {} outliers, {} range queries, {:?}",
        dbscan.clustering.num_clusters(),
        dbscan.clustering.noise_count(),
        dbscan.stats.range_queries,
        dbscan_time
    );
    println!(
        "DBSVEC:  {} hotspots, {} outliers, {} range queries, {:?}",
        dbsvec.num_clusters(),
        dbsvec.labels().noise_count(),
        dbsvec.stats().range_queries,
        dbsvec_time
    );

    let r = recall(
        dbscan.clustering.assignments(),
        dbsvec.labels().assignments(),
    );
    let ari = adjusted_rand_index(
        dbscan.clustering.assignments(),
        dbsvec.labels().assignments(),
    );
    println!();
    println!("agreement: recall={r:.3} ARI={ari:.3}");

    // Rank hotspots by size — the analyst-facing output.
    let mut sizes: Vec<(usize, usize)> = dbsvec
        .labels()
        .cluster_sizes()
        .into_iter()
        .enumerate()
        .collect();
    sizes.sort_by_key(|&(_, s)| std::cmp::Reverse(s));
    println!("\ntop hotspots by visit count:");
    for (rank, (id, size)) in sizes.iter().take(5).enumerate() {
        println!("  #{:<2} hotspot {:<3} {:>6} points", rank + 1, id, size);
    }

    assert!(r > 0.99, "DBSVEC must reproduce DBSCAN's hotspots");
}
