//! Quickstart: cluster a small 2-D dataset with DBSVEC.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dbsvec::{Dbsvec, DbsvecConfig, PointSet};

fn main() {
    // Three Gaussian-ish blobs and a few stragglers.
    let mut points = PointSet::new(2);
    for (cx, cy) in [(0.0, 0.0), (10.0, 0.0), (5.0, 8.0)] {
        for i in 0..100 {
            let a = i as f64 * 0.618; // low-discrepancy angle
            let r = (i as f64 / 100.0).sqrt();
            points.push(&[cx + r * a.cos(), cy + r * a.sin()]);
        }
    }
    points.push(&[50.0, 50.0]);
    points.push(&[-40.0, 30.0]);

    // eps = 0.6, MinPts = 5: blob-interior points see plenty of neighbors.
    let config = DbsvecConfig::new(0.6, 5);
    let result = Dbsvec::new(config).fit(&points);

    println!("points:       {}", points.len());
    println!("clusters:     {}", result.num_clusters());
    println!("noise points: {}", result.labels().noise_count());
    println!("cluster sizes: {:?}", result.labels().cluster_sizes());
    println!();
    println!("cost counters (the reason DBSVEC is fast):");
    println!(
        "  range queries:   {} (DBSCAN would issue {})",
        result.stats().range_queries,
        points.len()
    );
    println!("  SVDD trainings:  {}", result.stats().svdd_trainings);
    println!("  support vectors: {}", result.stats().support_vectors);
    println!(
        "  theta = {:.3} (queries per point)",
        result.stats().theta(points.len())
    );

    assert_eq!(result.num_clusters(), 3);
    assert_eq!(result.labels().noise_count(), 2);
    println!("\nok: 3 clusters found, 2 stragglers flagged as noise");
}
