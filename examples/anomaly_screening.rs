//! High-dimensional sensor anomaly screening.
//!
//! The paper's biomedical/sensor motivation: cluster normal operating
//! regimes of a 16-channel sensor rig and flag readings that belong to no
//! regime. The example also dips below the clustering API to show the
//! reusable SVDD layer: a one-class description of a single regime that
//! scores unseen readings directly.
//!
//! ```text
//! cargo run --release --example anomaly_screening
//! ```

use dbsvec::datasets::{random_walk_clusters, RandomWalkConfig};
use dbsvec::svdd::{GaussianKernel, SvddProblem};
use dbsvec::{Dbsvec, DbsvecConfig};

fn main() {
    // Three operating regimes drift slowly through sensor space (random
    // walks), plus 2% of corrupt readings scattered uniformly.
    let config = RandomWalkConfig {
        n: 30_000,
        dims: 16,
        clusters: 3,
        domain: 1e5,
        step_fraction: 0.002,
        noise_fraction: 0.02,
    };
    let data = random_walk_clusters(&config, 99);
    println!(
        "readings: {} x {}d, ~2% injected anomalies",
        data.len(),
        data.dims()
    );

    // ---- Screen with DBSVEC: noise = anomalies.
    let result = Dbsvec::new(DbsvecConfig::new(9000.0, 50)).fit(&data.points);
    let flagged = result.labels().noise_count();
    let injected = data.truth.iter().filter(|t| t.is_none()).count();
    let caught = data
        .truth
        .iter()
        .enumerate()
        .filter(|(i, t)| t.is_none() && result.labels().is_noise(*i))
        .count();
    println!(
        "regimes found: {}   flagged: {}   injected anomalies caught: {}/{}",
        result.num_clusters(),
        flagged,
        caught,
        injected
    );
    println!(
        "range queries: {} of {} readings (theta = {:.3})",
        result.stats().range_queries,
        data.len(),
        result.stats().theta(data.len())
    );
    assert!(
        caught as f64 >= 0.9 * injected as f64,
        "must catch most injected anomalies"
    );

    // ---- Drop down to SVDD: describe regime 0 and score new readings.
    let regime0: Vec<u32> = data
        .truth
        .iter()
        .enumerate()
        .filter(|(_, t)| **t == Some(0))
        .map(|(i, _)| i as u32)
        .take(500)
        .collect();
    let sigma = dbsvec::svdd::kernel_width_center_radius(&data.points, &regime0);
    let kernel = GaussianKernel::from_width(sigma);
    let model = SvddProblem::new(&data.points, &regime0, kernel)
        .with_nu(0.05)
        .solve();
    println!(
        "\nSVDD one-class model of regime 0: {} support vectors over {} readings (sigma = {sigma:.0})",
        model.num_support_vectors(),
        regime0.len()
    );

    // A reading from regime 0 scores inside; a far-off corrupt one outside.
    let typical = data.points.point(regime0[10]).to_vec();
    let corrupt: Vec<f64> = vec![0.0; 16];
    let score_typical = model.decision(&data.points, &typical);
    let score_corrupt = model.decision(&data.points, &corrupt);
    println!(
        "decision(typical) = {score_typical:.4}  <= R^2 = {:.4}",
        model.radius_sq()
    );
    println!("decision(corrupt) = {score_corrupt:.4}  (higher = farther outside)");
    assert!(score_typical < score_corrupt);
    println!("\nok: anomalies screened, one-class scoring works");
}
