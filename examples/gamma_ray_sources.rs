//! γ-ray source detection, after the paper's astronomy motivation.
//!
//! The paper cites Tramacere & Vecchio's "γ-ray DBSCAN" (A&A 2013), which
//! finds Fermi-LAT point sources as dense photon clusters over an isotropic
//! background. This example simulates a sky patch: a handful of point
//! sources emit photons with small angular scatter on top of uniform
//! background noise. DBSVEC recovers the sources and rejects the
//! background, and because most photons belong to compact clusters, it
//! does so with very few range queries.
//!
//! ```text
//! cargo run --release --example gamma_ray_sources
//! ```

use dbsvec::datasets::Dataset;
use dbsvec::geometry::rng::SplitMix64;
use dbsvec::metrics::{normalized_mutual_information, purity};
use dbsvec::{Dbsvec, DbsvecConfig, PointSet};

/// Simulates a `size`-degree square sky patch with `sources` point sources.
fn simulate_sky(
    sources: usize,
    photons_per_source: usize,
    background: usize,
    size: f64,
    seed: u64,
) -> Dataset {
    let mut rng = SplitMix64::new(seed);
    let mut points = PointSet::new(2);
    let mut truth = Vec::new();

    let normal = |rng: &mut SplitMix64| -> f64 {
        let u1 = rng.next_f64().max(f64::MIN_POSITIVE);
        let u2 = rng.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    };

    for s in 0..sources {
        // Keep sources away from the patch border.
        let cx = size * (0.15 + 0.7 * rng.next_f64());
        let cy = size * (0.15 + 0.7 * rng.next_f64());
        // Point-spread-function-like scatter, ~0.1 degrees.
        for _ in 0..photons_per_source {
            points.push(&[cx + 0.1 * normal(&mut rng), cy + 0.1 * normal(&mut rng)]);
            truth.push(Some(s as u32));
        }
    }
    for _ in 0..background {
        points.push(&[size * rng.next_f64(), size * rng.next_f64()]);
        truth.push(None);
    }
    Dataset { points, truth }
}

fn main() {
    let sky = simulate_sky(6, 400, 3000, 20.0, 2013);
    println!(
        "sky patch: {} photons ({} sources x 400 + {} background)",
        sky.len(),
        6,
        3000
    );

    // Background density: 3000 / 400 deg^2 = 7.5 photons/deg^2; a 0.25-deg
    // ball holds ~1.5 background photons but dozens of source photons.
    let result = Dbsvec::new(DbsvecConfig::new(0.25, 12)).fit(&sky.points);

    println!("detected sources: {}", result.num_clusters());
    println!("background flagged: {}", result.labels().noise_count());
    println!(
        "range queries: {} of {} photons (theta = {:.3})",
        result.stats().range_queries,
        sky.len(),
        result.stats().theta(sky.len())
    );

    let nmi = normalized_mutual_information(&sky.truth, result.labels().assignments());
    let p = purity(&sky.truth, result.labels().assignments());
    println!("against the simulation truth: NMI = {nmi:.3}, purity = {p:.3}");

    // Report each detection: centroid and photon count.
    println!("\ndetections:");
    let members = result.labels().cluster_members();
    for (id, photon_ids) in members.iter().enumerate() {
        let mut cx = 0.0;
        let mut cy = 0.0;
        for &i in photon_ids {
            let ph = sky.points.point(i);
            cx += ph[0];
            cy += ph[1];
        }
        let n = photon_ids.len() as f64;
        println!(
            "  source {:<2} at ({:6.2}, {:6.2}) deg, {:>4} photons",
            id,
            cx / n,
            cy / n,
            photon_ids.len()
        );
    }

    assert_eq!(
        result.num_clusters(),
        6,
        "all six injected sources must be detected"
    );
    assert!(p > 0.9, "detections must be photon-pure");
}
