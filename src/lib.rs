//! # DBSVEC — Density-Based Clustering Using Support Vector Expansion
//!
//! A Rust implementation of the DBSVEC algorithm (Wang, Zhang, Qi, Yuan —
//! ICDE 2019) together with the full stack of substrates and baselines the
//! paper evaluates against.
//!
//! This facade crate re-exports the workspace's public API under stable
//! paths. Most users only need [`Dbsvec`] (or [`dbsvec()`](fn@dbsvec) for the one-liner),
//! a [`PointSet`], and the evaluation helpers in [`metrics`]:
//!
//! ```
//! use dbsvec::{Dbsvec, DbsvecConfig, PointSet};
//!
//! // Two dense blobs and one straggler.
//! let mut ps = PointSet::new(2);
//! for i in 0..20 {
//!     ps.push(&[i as f64 * 0.01, 0.0]);
//!     ps.push(&[i as f64 * 0.01, 10.0]);
//! }
//! ps.push(&[100.0, 100.0]);
//!
//! let config = DbsvecConfig::new(0.5, 5);
//! let result = Dbsvec::new(config).fit(&ps);
//! assert_eq!(result.num_clusters(), 2);
//! assert!(result.labels().is_noise(40));
//! ```
//!
//! ## Workspace layout
//!
//! | re-export | crate | contents |
//! |---|---|---|
//! | [`geometry`] | `dbsvec-geometry` | [`PointSet`], distance kernels, bounding boxes |
//! | [`index`] | `dbsvec-index` | linear scan, kd-tree, R\*-tree, ball-tree, grid range-query engines; k-distance profiles |
//! | [`svdd`] | `dbsvec-svdd` | weighted SVDD trained by a from-scratch SMO solver; 2-D boundary extraction |
//! | [`core`] | `dbsvec-core` | the DBSVEC algorithm, its ablation variants, out-of-sample prediction |
//! | [`lsh`] | `dbsvec-lsh` | p-stable LSH substrate |
//! | [`baselines`] | `dbsvec-baselines` | DBSCAN, ρ-approximate DBSCAN, DBSCAN-LSH, NQ-DBSCAN, FDBSCAN, k-means, parallel DBSCAN, HDBSCAN\* |
//! | [`metrics`] | `dbsvec-metrics` | pair recall/precision/F1, Fowlkes–Mallows, ARI, NMI, silhouette, Davies–Bouldin |
//! | [`datasets`] | `dbsvec-datasets` | deterministic synthetic generators, CSV I/O, SVG scatter plots |
//! | [`obs`] | `dbsvec-obs` | run-trace observers: phase spans, typed events, JSONL sink, replay, profiling; telemetry registry with latency histograms and Prometheus/JSON exposition |
//! | [`engine`] | `dbsvec-engine` | persistent model snapshots (`.dbm`) and the online ingest/assign serving engine |
//! | [`server`] | `dbsvec-server` | std-only HTTP/1.1 serving tier: sharded multi-model router, bounded thread pool, graceful shutdown |
//!
//! A command-line front end lives in the separate `dbsvec-cli` crate
//! (binary `dbsvec-cli`): cluster, compare, generate, suggest, fit,
//! serve, serve-http, and ingest subcommands over CSV files.

pub use dbsvec_baselines as baselines;
pub use dbsvec_core as core;
pub use dbsvec_datasets as datasets;
pub use dbsvec_engine as engine;
pub use dbsvec_geometry as geometry;
pub use dbsvec_index as index;
pub use dbsvec_lsh as lsh;
pub use dbsvec_metrics as metrics;
pub use dbsvec_obs as obs;
pub use dbsvec_server as server;
pub use dbsvec_svdd as svdd;

pub use dbsvec_core::{
    dbsvec, Dbsvec, DbsvecConfig, ParallelConfig, SamplingConfig, SamplingMode,
    DEFAULT_SAMPLING_SEED,
};
pub use dbsvec_geometry::{PointId, PointSet};
