//! Integration tests for the observability layer against *real* runs:
//! span-nesting invariants, replay exactness, and the JSONL trace format.

use dbsvec::datasets::gaussian_mixture;
use dbsvec::obs::{Event, JsonlSink, Phase, Record, RecordingObserver, ReplayCounts, Tee};
use dbsvec::{Dbsvec, DbsvecConfig};

fn fitted_recording() -> (RecordingObserver, dbsvec::core::DbsvecResult) {
    let ds = gaussian_mixture(2500, 8, 5, 900.0, 1e5, 11);
    let eps = dbsvec::datasets::standins::suggest_eps(&ds.points, 10, 2);
    let mut recorder = RecordingObserver::new();
    let result = Dbsvec::new(DbsvecConfig::new(eps, 10)).fit_observed(&ds.points, &mut recorder);
    assert!(result.num_clusters() >= 2, "want a multi-cluster run");
    (recorder, result)
}

#[test]
fn svdd_train_spans_nest_inside_sv_expand_inside_init() {
    let (recorder, _) = fitted_recording();
    let mut stack: Vec<Phase> = Vec::new();
    let mut trainings = 0;
    for record in recorder.records() {
        match record {
            Record::Enter { phase, .. } => {
                if *phase == Phase::SvddTrain {
                    trainings += 1;
                    assert_eq!(
                        stack.last(),
                        Some(&Phase::SvExpand),
                        "svdd_train must open inside sv_expand, stack was {stack:?}"
                    );
                    assert_eq!(stack.first(), Some(&Phase::Init));
                }
                if *phase == Phase::SvExpand {
                    assert_eq!(
                        stack.last(),
                        Some(&Phase::Init),
                        "sv_expand must open inside init, stack was {stack:?}"
                    );
                }
                stack.push(*phase);
            }
            Record::Exit { phase, .. } => {
                assert_eq!(stack.pop(), Some(*phase), "span exits must be LIFO");
            }
            Record::Event { .. } => {}
        }
    }
    assert!(stack.is_empty(), "all spans closed, leftover {stack:?}");
    assert!(trainings > 0, "a real run trains at least one SVDD");
}

#[test]
fn replayed_counters_match_the_run_stats_exactly() {
    let (recorder, result) = fitted_recording();
    let stats = result.stats();
    let replayed = recorder.replay();
    assert_eq!(replayed.seeds, stats.seeds);
    assert_eq!(replayed.svdd_trainings, stats.svdd_trainings);
    assert_eq!(replayed.support_vectors, stats.support_vectors);
    assert_eq!(replayed.core_support_vectors, stats.core_support_vectors);
    assert_eq!(replayed.merges, stats.merges);
    assert_eq!(replayed.noise_candidates, stats.noise_candidates);
    assert_eq!(replayed.noise_confirmed, stats.noise_confirmed);
    assert_eq!(replayed.range_queries, stats.range_queries);
    assert_eq!(replayed.expansion_rounds, stats.expansion_rounds);
    assert_eq!(replayed.max_target_size, stats.max_target_size);
    assert_eq!(replayed.smo_iterations, stats.smo_iterations);
    assert_eq!(
        replayed.warm_started_trainings,
        stats.warm_started_trainings
    );
    assert_eq!(replayed.iterations_exhausted, stats.iterations_exhausted);
    assert_eq!(replayed.shrunk_variables, stats.shrunk_variables);
    assert_eq!(
        replayed.initial_kkt_violation_e6,
        stats.initial_kkt_violation_e6
    );

    // θ recomputed from raw RangeQuery events agrees too.
    let n = result.labels().len();
    let raw = recorder
        .events()
        .filter(|e| matches!(e, Event::RangeQuery { .. }))
        .count() as u64;
    assert_eq!(raw, stats.range_queries);
    assert!((replayed.theta(n) - stats.theta(n)).abs() < 1e-12);
}

#[test]
fn jsonl_trace_of_a_real_run_parses_and_replays() {
    let ds = gaussian_mixture(1500, 4, 4, 800.0, 1e5, 3);
    let eps = dbsvec::datasets::standins::suggest_eps(&ds.points, 8, 1);
    let mut recorder = RecordingObserver::new();
    let mut sink = JsonlSink::new(Vec::new());
    let result = Dbsvec::new(DbsvecConfig::new(eps, 8))
        .fit_observed(&ds.points, &mut Tee(&mut recorder, &mut sink));
    let bytes = sink.finish().expect("in-memory sink cannot fail");
    let text = String::from_utf8(bytes).expect("trace is UTF-8");

    // Golden format check: every line is a standalone JSON object with a
    // timestamp and a kind.
    assert!(text.lines().count() > 10);
    for (i, line) in text.lines().enumerate() {
        let value = dbsvec::obs::json::parse(line)
            .unwrap_or_else(|e| panic!("line {} is not valid JSON ({e}): {line}", i + 1));
        assert!(value.get("t").is_some(), "line {} has no timestamp", i + 1);
        let kind = value.get("kind").expect("line has a kind");
        assert!(
            ["enter", "exit", "event"]
                .iter()
                .any(|k| *kind == dbsvec::obs::Json::str(*k)),
            "unexpected kind {kind:?}"
        );
    }

    // The written trace replays to the exact run statistics.
    let replayed = ReplayCounts::from_jsonl(&text).expect("trace replays");
    assert_eq!(replayed.range_queries, result.stats().range_queries);
    assert_eq!(replayed.seeds, result.stats().seeds);
    assert_eq!(replayed.smo_iterations, result.stats().smo_iterations);
    assert_eq!(replayed, recorder.replay());
}
