//! Thread-count invariance of the parallel fit path.
//!
//! The tentpole guarantee: `DbsvecConfig::with_threads(n)` changes *where*
//! work runs, never *what* is computed. Fitting the same dataset at 1, 2,
//! 4, and 8 threads must produce bit-identical labels, core sets, and
//! [`dbsvec::core::DbsvecStats`] — and the recorded observer trace
//! (phase spans + typed events, including per-training SMO iteration and
//! kernel-cache counters) must match callback for callback, so a trace
//! captured from a parallel run replays exactly like a sequential one.

use dbsvec::engine::{snapshot, Engine, ModelArtifact};
use dbsvec::geometry::rng::SplitMix64;
use dbsvec::obs::{Event, Phase, Record, RecordingObserver};
use dbsvec::{Dbsvec, DbsvecConfig, PointSet};

/// Two well-separated noisy blobs plus scattered stragglers — enough
/// structure to exercise seeding, multi-round expansion, merging, and
/// noise verification.
fn dataset(seed: u64, per_blob: usize) -> PointSet {
    let mut rng = SplitMix64::new(seed);
    let mut ps = PointSet::new(2);
    for c in [[0.0, 0.0], [28.0, 6.0], [5.0, 40.0]] {
        for _ in 0..per_blob {
            let x: f64 = (0..12).map(|_| rng.next_f64()).sum::<f64>() - 6.0;
            let y: f64 = (0..12).map(|_| rng.next_f64()).sum::<f64>() - 6.0;
            ps.push(&[c[0] + 1.3 * x, c[1] + 1.3 * y]);
        }
    }
    for _ in 0..12 {
        ps.push(&[
            rng.next_f64_range(-60.0, 90.0),
            rng.next_f64_range(-60.0, 90.0),
        ]);
    }
    ps
}

/// A record with its timestamp erased — the comparable shape of a trace.
#[derive(Debug, PartialEq, Eq)]
enum Step {
    Enter(Phase),
    Exit(Phase),
    Ev(Event),
}

fn steps(recorder: &RecordingObserver) -> Vec<Step> {
    recorder
        .records()
        .iter()
        .map(|r| match r {
            Record::Enter { phase, .. } => Step::Enter(*phase),
            Record::Exit { phase, .. } => Step::Exit(*phase),
            Record::Event { event, .. } => Step::Ev(event.clone()),
        })
        .collect()
}

#[test]
fn fit_is_bit_identical_across_thread_counts() {
    let ps = dataset(0xD371, 110);
    let config = |threads: usize| DbsvecConfig::new(3.0, 6).with_threads(threads);
    let baseline = Dbsvec::new(config(1)).fit(&ps);
    assert!(baseline.num_clusters() >= 2, "dataset should cluster");
    for threads in [2usize, 4, 8] {
        let result = Dbsvec::new(config(threads)).fit(&ps);
        assert_eq!(baseline.labels(), result.labels(), "threads={threads}");
        assert_eq!(
            baseline.core_points(),
            result.core_points(),
            "threads={threads}"
        );
        // DbsvecStats is one struct equality: range_queries, seeds,
        // expansion rounds, SVDD trainings, SMO iterations, support
        // vectors, merges, noise counters — all must agree exactly.
        assert_eq!(baseline.stats(), result.stats(), "threads={threads}");
    }
}

#[test]
fn auto_thread_config_matches_sequential_results() {
    let ps = dataset(0xD372, 80);
    let sequential = Dbsvec::new(DbsvecConfig::new(3.0, 6).with_threads(1)).fit(&ps);
    // threads = 0 resolves to the machine's available parallelism —
    // whatever that is here, the results must not move.
    let auto = Dbsvec::new(DbsvecConfig::new(3.0, 6)).fit(&ps);
    assert_eq!(sequential.labels(), auto.labels());
    assert_eq!(sequential.stats(), auto.stats());
    assert_eq!(sequential.core_points(), auto.core_points());
}

#[test]
fn recorded_traces_are_identical_across_thread_counts() {
    let ps = dataset(0xD373, 90);
    let trace = |threads: usize| {
        let mut recorder = RecordingObserver::new();
        let result = Dbsvec::new(DbsvecConfig::new(3.0, 6).with_threads(threads))
            .fit_observed(&ps, &mut recorder);
        (steps(&recorder), recorder.replay(), result)
    };
    let (base_steps, base_replay, base_result) = trace(1);
    assert!(!base_steps.is_empty());
    for threads in [2usize, 4, 8] {
        let (par_steps, par_replay, par_result) = trace(threads);
        // Callback-for-callback equality: same phase nesting, same events
        // in the same order with the same payloads.
        assert_eq!(base_steps, par_steps, "threads={threads}");
        // Replaying either stream reproduces the same counters, and those
        // counters agree with the returned stats.
        assert_eq!(base_replay, par_replay, "threads={threads}");
        assert_eq!(
            par_replay.range_queries,
            par_result.stats().range_queries,
            "threads={threads}"
        );
        assert_eq!(base_result.labels(), par_result.labels());
    }
}

/// Two 3×3 unit grids whose labels equal the geometric components at
/// ε = 1.2, MinPts = 3 — the closure-property model `tests/dynamic.rs`
/// exercises, rebuilt here as a deterministic dynamic-maintenance base.
fn two_grid_artifact() -> ModelArtifact {
    let mut cores = PointSet::new(2);
    let mut core_labels = Vec::new();
    for (x0, label) in [(0, 0u32), (6, 1)] {
        for x in x0..x0 + 3 {
            for y in 0..3 {
                cores.push(&[x as f64, y as f64]);
                core_labels.push(label);
            }
        }
    }
    ModelArtifact {
        eps: 1.2,
        min_pts: 3,
        num_clusters: 2,
        cores,
        core_labels,
        boundaries: None,
        quality: None,
        sampling: None,
    }
}

/// Dynamic maintenance is deterministic too: one fixed insert / delete /
/// assign interleaving driven at 1, 2, 4, and 8 assignment threads — and
/// replayed on a cold engine reloaded from snapshot bytes — must produce
/// the same trace callback for callback, the same replayed counters, the
/// same engine stats, and a bit-identical snapshot encoding.
#[test]
fn insert_delete_interleavings_are_bit_identical_across_threads_and_restarts() {
    let run = |artifact: &ModelArtifact, threads: usize| {
        let mut engine = Engine::new(artifact);
        let mut recorder = RecordingObserver::new();
        let mut rng = SplitMix64::new(0xD375);
        let mut inserted: Vec<Vec<f64>> = Vec::new();
        for op in 0..160 {
            match op % 4 {
                // Inserts on a half-unit lattice spanning both grids and
                // the gap: some buffer, some promote, some merge.
                0 | 1 => {
                    let p = vec![
                        (rng.next_below(19) as f64) * 0.5 - 0.5,
                        (rng.next_below(7) as f64) * 0.5 - 0.5,
                    ];
                    engine.ingest_observed(&p, &mut recorder);
                    inserted.push(p);
                }
                // Deletes of earlier inserts (occasionally already
                // removed — the miss is part of the trace under test).
                2 => {
                    let p = inserted[rng.next_below(inserted.len() as u64) as usize].clone();
                    engine.remove_observed(&p, &mut recorder);
                }
                // Threaded assign batches: `threads` changes where the
                // queries run, never what is answered or recorded.
                _ => {
                    let mut queries = PointSet::new(2);
                    for _ in 0..6 {
                        queries
                            .push(&[rng.next_f64_range(-1.0, 9.0), rng.next_f64_range(-1.0, 3.0)]);
                    }
                    engine.assign_batch_observed(&queries, threads, &mut recorder);
                }
            }
        }
        let stats = *engine.stats();
        (
            steps(&recorder),
            recorder.replay(),
            stats,
            snapshot::encode(&engine.snapshot()),
        )
    };

    let artifact = two_grid_artifact();
    let (base_steps, base_replay, base_stats, base_bytes) = run(&artifact, 1);
    assert!(base_replay.removals > 0, "sequence should remove points");
    assert!(base_replay.merges > 0, "sequence should merge clusters");
    for threads in [2usize, 4, 8] {
        let (s, r, st, bytes) = run(&artifact, threads);
        assert_eq!(base_steps, s, "threads={threads}");
        assert_eq!(base_replay, r, "threads={threads}");
        assert_eq!(base_stats, st, "threads={threads}");
        assert_eq!(base_bytes, bytes, "threads={threads}");
    }

    // Cold start: round-trip the base model through snapshot bytes and
    // replay the same interleaving — nothing may move.
    let reloaded = snapshot::decode(&snapshot::encode(&artifact)).expect("round-trip");
    let (s, r, st, bytes) = run(&reloaded, 4);
    assert_eq!(base_steps, s, "cold restart");
    assert_eq!(base_replay, r, "cold restart");
    assert_eq!(base_stats, st, "cold restart");
    assert_eq!(base_bytes, bytes, "cold restart");
}

#[test]
fn smo_cache_counters_in_the_trace_are_thread_invariant() {
    let ps = dataset(0xD374, 100);
    #[allow(clippy::type_complexity)]
    let solves = |threads: usize| -> Vec<(usize, usize, u64, u64, bool, bool, usize, u64)> {
        let mut recorder = RecordingObserver::new();
        let _ = Dbsvec::new(DbsvecConfig::new(3.0, 6).with_threads(threads))
            .fit_observed(&ps, &mut recorder);
        recorder
            .events()
            .filter_map(|e| match e {
                Event::SmoSolve {
                    target_size,
                    iterations,
                    cache_hits,
                    cache_misses,
                    warm_started,
                    converged,
                    shrunk,
                    initial_kkt_violation_e6,
                } => Some((
                    *target_size,
                    *iterations,
                    *cache_hits,
                    *cache_misses,
                    *warm_started,
                    *converged,
                    *shrunk,
                    *initial_kkt_violation_e6,
                )),
                _ => None,
            })
            .collect()
    };
    let baseline = solves(1);
    assert!(
        !baseline.is_empty(),
        "fit should have trained at least one SVDD"
    );
    for threads in [2usize, 4, 8] {
        assert_eq!(baseline, solves(threads), "threads={threads}");
    }
}
