//! Cross-algorithm consistency: the exact algorithms agree bit-for-bit,
//! the approximate ones stay within their advertised slack.

use dbsvec::baselines::{Dbscan, DbscanLsh, KMeans, NqDbscan, RhoApproxDbscan};
use dbsvec::datasets::{gaussian_mixture, random_walk_clusters, RandomWalkConfig};
use dbsvec::index::{GridIndex, KdTree, LinearScan, RStarTree};
use dbsvec::metrics::recall;

#[test]
fn dbscan_is_index_invariant() {
    let ds = gaussian_mixture(900, 4, 5, 800.0, 1e5, 1);
    let algo = Dbscan::new(2500.0, 6);
    let reference = algo
        .fit_with_index(&ds.points, &LinearScan::build(&ds.points))
        .clustering;
    let via_kd = algo
        .fit_with_index(&ds.points, &KdTree::build(&ds.points))
        .clustering;
    let via_rstar = algo
        .fit_with_index(&ds.points, &RStarTree::build(&ds.points))
        .clustering;
    let via_grid = algo
        .fit_with_index(&ds.points, &GridIndex::build(&ds.points, 2500.0))
        .clustering;
    assert_eq!(reference, via_kd);
    assert_eq!(reference, via_rstar);
    assert_eq!(reference, via_grid);
}

#[test]
fn nq_dbscan_equals_dbscan_on_every_workload() {
    for seed in 0..3u64 {
        let ds = random_walk_clusters(&RandomWalkConfig::paper_default(4000, 5), seed);
        let exact = Dbscan::new(5000.0, 50).fit(&ds.points).clustering;
        let nq = NqDbscan::new(5000.0, 50).fit(&ds.points).clustering;
        assert_eq!(exact, nq, "seed {seed}");
    }
}

#[test]
fn rho_approx_recall_is_high_on_separated_data() {
    let ds = gaussian_mixture(1500, 3, 6, 900.0, 1e5, 2);
    let exact = Dbscan::new(2800.0, 8).fit(&ds.points).clustering;
    let approx = RhoApproxDbscan::new(2800.0, 8, 0.001)
        .fit(&ds.points)
        .clustering;
    let r = recall(exact.assignments(), approx.assignments());
    assert!(r > 0.99, "rho-approx recall {r}");
    assert_eq!(exact.num_clusters(), approx.num_clusters());
}

#[test]
fn lsh_recall_is_imperfect_but_useful() {
    // DBSCAN-LSH is the weakest approximation in the paper's Table III
    // (0.645–1.000); on well-separated mixtures it should stay high but it
    // may legitimately fragment clusters.
    let ds = gaussian_mixture(1500, 8, 5, 900.0, 1e5, 3);
    let exact = Dbscan::new(3500.0, 8).fit(&ds.points).clustering;
    let lsh = DbscanLsh::new(3500.0, 8, 7).fit(&ds.points).clustering;
    let r = recall(exact.assignments(), lsh.assignments());
    assert!(r > 0.5, "LSH recall collapsed: {r}");
    assert!(lsh.num_clusters() >= exact.num_clusters());
}

#[test]
fn kmeans_matches_generator_truth_on_separated_mixtures() {
    let ds = gaussian_mixture(800, 5, 4, 700.0, 1e5, 4);
    let result = KMeans::new(4, 9).fit(&ds.points);
    let r = recall(&ds.truth, result.clustering.assignments());
    assert!(r > 0.99, "k-means recall vs truth {r}");
}

#[test]
fn all_density_algorithms_see_the_same_obvious_structure() {
    let ds = gaussian_mixture(1200, 2, 4, 800.0, 1e5, 5);
    let eps = 2500.0;
    let min_pts = 8;
    let counts = [
        Dbscan::new(eps, min_pts)
            .fit(&ds.points)
            .clustering
            .num_clusters(),
        NqDbscan::new(eps, min_pts)
            .fit(&ds.points)
            .clustering
            .num_clusters(),
        RhoApproxDbscan::new(eps, min_pts, 0.001)
            .fit(&ds.points)
            .clustering
            .num_clusters(),
        dbsvec::dbsvec(&ds.points, eps, min_pts).num_clusters(),
    ];
    assert!(counts.iter().all(|&c| c == 4), "cluster counts {counts:?}");
}
