//! End-to-end quality monitoring through the facade: the fit-time quality
//! baseline must survive the snapshot round trip, a monitored engine must
//! separate drifted traffic from stationary traffic, its window/alert
//! events must replay from a JSONL trace to the exact live counts, and a
//! baseline-less (v1-era) model must degrade gracefully instead of
//! alerting on signals it cannot compute.

use dbsvec::datasets::{gaussian_mixture, standins::suggest_eps};
use dbsvec::engine::{snapshot, Engine, ModelArtifact, MonitorConfig};
use dbsvec::geometry::rng::SplitMix64;
use dbsvec::obs::{JsonlSink, NoopObserver, RecordingObserver, ReplayCounts, Tee};
use dbsvec::{Dbsvec, DbsvecConfig, PointSet};

const DIMS: usize = 4;
const WINDOW: usize = 100;

/// Fits a mixture and returns (training points, eps, quality-baselined
/// artifact round-tripped through the snapshot format).
fn fitted_model(seed: u64) -> (PointSet, f64, ModelArtifact) {
    let ds = gaussian_mixture(1_500, DIMS, 3, 500.0, 1e5, seed);
    let eps = suggest_eps(&ds.points, 6, seed);
    let fit = Dbsvec::new(DbsvecConfig::new(eps, 6)).fit(&ds.points);
    let artifact = ModelArtifact::from_fit(&ds.points, fit.labels(), fit.core_points(), eps, 6)
        .expect("valid fit")
        .with_quality(&ds.points, fit.labels());
    let bytes = snapshot::encode(&artifact);
    let restored = snapshot::decode(&bytes).expect("own bytes decode");
    assert_eq!(restored, artifact, "snapshot round trip is lossless");
    assert!(
        restored.quality.is_some(),
        "the quality baseline must survive the snapshot round trip"
    );
    (ds.points, eps, restored)
}

/// Training points displaced by `offset` eps on every coordinate, with a
/// deterministic sub-eps jitter so no two queries are identical.
fn shifted_stream(points: &PointSet, eps: f64, offset: f64, seed: u64) -> PointSet {
    let mut rng = SplitMix64::new(seed);
    let mut out = PointSet::new(DIMS);
    let mut buf = vec![0.0; DIMS];
    for (_, p) in points.iter() {
        for (d, v) in buf.iter_mut().enumerate() {
            *v = p[d] + (rng.next_f64() - 0.5) * eps + offset * eps;
        }
        out.push(&buf);
    }
    out
}

#[test]
fn monitored_serving_separates_drift_and_replays_from_the_trace() {
    let (points, eps, artifact) = fitted_model(17);

    // ---- Stationary traffic: jittered training points stay quiet.
    let mut engine = Engine::new(&artifact);
    let mut monitor = engine.monitor(MonitorConfig::new().with_window(WINDOW));
    assert!(monitor.has_baseline());
    let stationary = shifted_stream(&points, eps, 0.0, 0x57a7);
    for (_, p) in stationary.iter() {
        engine.assign_monitored(p, &mut monitor, &mut NoopObserver);
    }
    let expected_windows = (points.len() / WINDOW) as u64;
    assert_eq!(monitor.windows_completed(), expected_windows);
    assert_eq!(
        monitor.alerts(),
        0,
        "in-distribution traffic must not alert"
    );
    assert!(!monitor.drift_exceeded());
    let health = engine.health_with(&monitor);
    assert!(!health.refit_recommended, "fresh model, fresh traffic");
    let signals = health.drift.expect("windows completed, so signals exist");
    assert!(
        signals.smoothed_score < monitor.config().drift_threshold,
        "stationary smoothed score {:.3} must sit below the threshold",
        signals.smoothed_score
    );

    // ---- Drifted traffic: a 3-eps-per-coordinate population shift must
    // alert, and every window/alert event must replay from the trace.
    let mut engine = Engine::new(&artifact);
    let mut monitor = engine.monitor(MonitorConfig::new().with_window(WINDOW));
    let mut recorder = RecordingObserver::new();
    let mut sink = JsonlSink::new(Vec::new());
    let drifted = shifted_stream(&points, eps, 3.0, 0x57a7);
    for (_, p) in drifted.iter() {
        engine.assign_monitored(p, &mut monitor, &mut Tee(&mut recorder, &mut sink));
    }
    assert_eq!(monitor.windows_completed(), expected_windows);
    assert!(monitor.alerts() > 0, "a population shift must raise alerts");
    assert!(monitor.drift_exceeded());
    let health = engine.health_with(&monitor);
    assert!(
        health.refit_recommended,
        "drift alone must recommend a refit even with zero staleness"
    );

    let text = String::from_utf8(sink.finish().expect("in-memory sink cannot fail"))
        .expect("trace is UTF-8");
    let replayed = ReplayCounts::from_jsonl(&text).expect("trace replays");
    assert_eq!(replayed.quality_windows, monitor.windows_completed());
    assert_eq!(replayed.drift_alerts, monitor.alerts());
    assert_eq!(replayed, recorder.replay(), "sink and recorder agree");
}

#[test]
fn baseline_less_model_monitors_in_degraded_mode() {
    // A model persisted before quality baselines existed (format v1)
    // decodes with `quality: None`; a monitor on top of it must keep
    // counting windows without ever fabricating drift evidence.
    let ds = gaussian_mixture(800, DIMS, 3, 500.0, 1e5, 41);
    let eps = suggest_eps(&ds.points, 6, 41);
    let fit = Dbsvec::new(DbsvecConfig::new(eps, 6)).fit(&ds.points);
    let artifact = ModelArtifact::from_fit(&ds.points, fit.labels(), fit.core_points(), eps, 6)
        .expect("valid fit");
    assert!(artifact.quality.is_none());

    let mut engine = Engine::new(&artifact);
    let mut monitor = engine.monitor(MonitorConfig::new().with_window(WINDOW));
    assert!(!monitor.has_baseline());
    let drifted = shifted_stream(&ds.points, eps, 3.0, 0xdead);
    for (_, p) in drifted.iter() {
        engine.assign_monitored(p, &mut monitor, &mut NoopObserver);
    }
    assert_eq!(
        monitor.windows_completed(),
        (ds.points.len() / WINDOW) as u64
    );
    assert_eq!(monitor.alerts(), 0, "no baseline, no drift evidence");
    assert!(!monitor.drift_exceeded());
    assert!(monitor.signals().is_none());
    let health = engine.health_with(&monitor);
    assert!(health.drift.is_none());
    assert!(!health.refit_recommended);
}
