//! The reproduction's central claims (paper §III-C): DBSVEC's clusters
//! match exact DBSCAN's across dataset families, dimensionalities, and
//! configurations.

use dbsvec::baselines::Dbscan;
use dbsvec::core::{Clustering, NuStrategy};
use dbsvec::datasets::{
    chameleon_t48k, gaussian_mixture, random_walk_clusters, OpenDataset, RandomWalkConfig,
};
use dbsvec::metrics::{adjusted_rand_index, recall};
use dbsvec::{Dbsvec, DbsvecConfig, PointSet};

fn run_both(points: &PointSet, eps: f64, min_pts: usize) -> (Clustering, Clustering) {
    let dbscan = Dbscan::new(eps, min_pts).fit(points).clustering;
    let dbsvec = Dbsvec::new(DbsvecConfig::new(eps, min_pts))
        .fit(points)
        .into_labels();
    (dbscan, dbsvec)
}

/// Theorem 3: noise sets are identical.
fn assert_same_noise(dbscan: &Clustering, dbsvec: &Clustering) {
    for i in 0..dbscan.len() {
        assert_eq!(
            dbscan.is_noise(i),
            dbsvec.is_noise(i),
            "noise status of point {i} differs (Theorem 3 violated)"
        );
    }
}

/// Theorem 1 (sampled): DBSVEC never joins *core* points DBSCAN separates.
/// (Border points within ε of two clusters may land in either under both
/// algorithms — DBSCAN itself is order-dependent there.)
fn assert_necessity(
    points: &PointSet,
    eps: f64,
    min_pts: usize,
    dbscan: &Clustering,
    dbsvec: &Clustering,
) {
    use dbsvec::index::{LinearScan, RangeIndex};
    let scan = LinearScan::build(points);
    let core: Vec<bool> = (0..points.len())
        .map(|i| scan.count_range(points.point(i as u32), eps) >= min_pts)
        .collect();
    let a = dbscan.assignments();
    let b = dbsvec.assignments();
    for i in (0..a.len()).step_by(3) {
        if !core[i] {
            continue;
        }
        for j in (i + 1..a.len()).step_by(17) {
            if core[j] && b[i].is_some() && b[i] == b[j] {
                assert!(
                    a[i].is_some() && a[i] == a[j],
                    "DBSVEC joined core points {i},{j} but DBSCAN separated them (Theorem 1)"
                );
            }
        }
    }
}

#[test]
fn chameleon_shapes_match() {
    let ds = chameleon_t48k(42);
    // Density-derived parameters, like the Fig. 1 harness.
    let min_pts = 10;
    let eps = dbsvec::datasets::standins::suggest_eps(&ds.points, min_pts, 1);
    let (dbscan, dbsvec) = run_both(&ds.points, eps, min_pts);
    let r = recall(dbscan.assignments(), dbsvec.assignments());
    assert!(r > 0.999, "t4.8k recall {r}");
    assert_same_noise(&dbscan, &dbsvec);
    assert_necessity(&ds.points, eps, min_pts, &dbscan, &dbsvec);
}

#[test]
fn gaussian_mixtures_match_across_dimensionalities() {
    for (d, k) in [(2, 8), (9, 4), (16, 6), (32, 8)] {
        let ds = gaussian_mixture(1200, d, k, 1000.0, 1e5, 7 + d as u64);
        let min_pts = 8;
        let eps = dbsvec::datasets::standins::suggest_eps(&ds.points, min_pts, 2);
        let (dbscan, dbsvec) = run_both(&ds.points, eps, min_pts);
        let r = recall(dbscan.assignments(), dbsvec.assignments());
        assert!(r > 0.999, "d={d}: recall {r}");
        assert_same_noise(&dbscan, &dbsvec);
        let ari = adjusted_rand_index(dbscan.assignments(), dbsvec.assignments());
        assert!(ari > 0.999, "d={d}: ARI {ari}");
    }
}

#[test]
fn random_walk_clusters_match() {
    let ds = random_walk_clusters(&RandomWalkConfig::paper_default(8000, 8), 3);
    let (dbscan, dbsvec) = run_both(&ds.points, 5000.0, 100);
    let r = recall(dbscan.assignments(), dbsvec.assignments());
    assert!(r > 0.999, "recall {r}");
    assert_same_noise(&dbscan, &dbsvec);
    assert_necessity(&ds.points, 5000.0, 100, &dbscan, &dbsvec);
}

#[test]
fn every_table3_standin_reaches_paper_recall() {
    // Table III: DBSVEC with ν* scores 1.000 on every dataset. Run the
    // small stand-ins end to end (big ones are covered at reduced scale).
    for dataset in OpenDataset::table3() {
        let scale = if dataset.cardinality() > 8000 {
            0.2
        } else {
            1.0
        };
        let standin = dataset.generate_scaled(scale, 11);
        let points = &standin.dataset.points;
        let (dbscan, dbsvec) = run_both(points, standin.suggested.eps, standin.suggested.min_pts);
        let r = recall(dbscan.assignments(), dbsvec.assignments());
        assert!(r >= 0.99, "{}: recall {r}", standin.name);
    }
}

#[test]
fn dbsvec_min_stays_close_to_dbscan() {
    // Table III's DBSVEC_min row: worst observed recall 0.976.
    let ds = gaussian_mixture(1000, 9, 4, 1000.0, 1e5, 5);
    let min_pts = 8;
    let eps = dbsvec::datasets::standins::suggest_eps(&ds.points, min_pts, 3);
    let dbscan = Dbscan::new(eps, min_pts).fit(&ds.points).clustering;
    let dbsvec_min = Dbsvec::new(DbsvecConfig::new(eps, min_pts).minimal_nu())
        .fit(&ds.points)
        .into_labels();
    let r = recall(dbscan.assignments(), dbsvec_min.assignments());
    assert!(r >= 0.95, "DBSVEC_min recall {r}");
}

#[test]
fn nu_one_matches_dbscan_exactly() {
    // §IV-C: DBSVEC degenerates to DBSCAN as ν → 1 (every point becomes a
    // support vector, so every cluster point is eventually queried).
    let ds = gaussian_mixture(600, 3, 3, 1000.0, 1e5, 9);
    let min_pts = 6;
    let eps = dbsvec::datasets::standins::suggest_eps(&ds.points, min_pts, 4);
    let mut config = DbsvecConfig::new(eps, min_pts);
    config.nu = NuStrategy::Fixed(1.0);
    let dbsvec = Dbsvec::new(config).fit(&ds.points).into_labels();
    let dbscan = Dbscan::new(eps, min_pts).fit(&ds.points).clustering;
    let r = recall(dbscan.assignments(), dbsvec.assignments());
    assert_eq!(r, 1.0);
    assert_same_noise(&dbscan, &dbsvec);
}

#[test]
fn query_savings_grow_with_density() {
    // The core efficiency claim: θ ≪ 1 on clustered data.
    let ds = random_walk_clusters(&RandomWalkConfig::paper_default(20_000, 8), 13);
    let result = Dbsvec::new(DbsvecConfig::new(5000.0, 100)).fit(&ds.points);
    let theta = result.stats().theta(ds.len());
    assert!(
        theta < 0.35,
        "theta = {theta}: DBSVEC saved too few queries"
    );
}
