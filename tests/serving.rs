//! End-to-end serving pipeline through the facade: fit → persist → reload
//! → serve must reproduce the training run's labels (modulo border
//! tie-breaks between clusters), and the reloaded engine must keep
//! serving correctly after online ingest.

use dbsvec::datasets::{gaussian_mixture, standins::suggest_eps, two_moons};
use dbsvec::engine::{snapshot, Assignment, Engine, ModelArtifact, SampledMode, SamplingInfo};
use dbsvec::geometry::squared_euclidean;
use dbsvec::{Dbsvec, DbsvecConfig};

/// Fit, snapshot to disk, reload, serve the training set back, and check
/// every single label against the fit.
fn fit_save_serve_reproduces(points: &dbsvec::PointSet, eps: f64, min_pts: usize, tag: &str) {
    let fit = Dbsvec::new(DbsvecConfig::new(eps, min_pts)).fit(points);
    let artifact =
        ModelArtifact::from_fit(points, fit.labels(), fit.core_points(), eps, min_pts as u32)
            .expect("valid fit")
            .with_boundaries(points, fit.labels());

    let dir = std::env::temp_dir().join(format!("dbsvec-serving-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model.dbm");
    snapshot::write_file(&artifact, &path).expect("snapshot writes");
    let (restored, _) = snapshot::read_file(&path).expect("snapshot reads");
    assert_eq!(restored, artifact, "disk round trip is lossless");
    std::fs::remove_dir_all(&dir).ok();

    let mut engine = Engine::new(&restored);
    let served = engine.assign_batch(points, 2);
    let eps_sq = eps * eps;
    let core_set: std::collections::HashSet<u32> = fit.core_points().iter().copied().collect();

    let mut border_ties = 0usize;
    for (i, p) in points.iter() {
        let fitted = fit.labels().get(i as usize);
        match served[i as usize] {
            Assignment::Noise => {
                // Noise must match exactly: both sides mean "no verified
                // core within eps" (the paper's Theorems 2-3).
                assert_eq!(fitted, None, "{tag}: point {i} clustered by the fit");
            }
            Assignment::Cluster(c) => {
                assert!(fitted.is_some(), "{tag}: fit called point {i} noise");
                if fitted == Some(c) {
                    continue;
                }
                // A disagreement is only legal for a border point sitting
                // within eps of cores of more than one cluster.
                assert!(
                    !core_set.contains(&i),
                    "{tag}: core point {i} must keep its exact label"
                );
                let reachable: Vec<u32> = restored
                    .cores
                    .iter()
                    .filter(|(_, core)| squared_euclidean(core, p) <= eps_sq)
                    .map(|(j, _)| restored.core_labels[j as usize])
                    .collect();
                assert!(
                    reachable.contains(&c) && reachable.contains(&fitted.unwrap()),
                    "{tag}: point {i} label {c} is not a tie between reachable clusters"
                );
                border_ties += 1;
            }
        }
    }
    assert!(
        border_ties * 100 <= points.len(),
        "{tag}: {border_ties} border ties out of {} points is not 'modulo ties'",
        points.len()
    );
}

#[test]
fn fit_save_serve_reproduces_training_labels() {
    let blobs = gaussian_mixture(1200, 4, 4, 600.0, 1e5, 11);
    let eps = suggest_eps(&blobs.points, 6, 1);
    fit_save_serve_reproduces(&blobs.points, eps, 6, "blobs");

    let moons = two_moons(900, 0.05, 23);
    fit_save_serve_reproduces(&moons.points, 0.15, 5, "moons");
}

/// A sampled fit must serve exactly like an exact one: the snapshot keeps
/// the sampling provenance, the engine reports it back, and assignments
/// still follow the nearest-core-within-eps rule against the (sampled)
/// core set — label transparency end to end.
#[test]
fn sampled_fit_save_assign_round_trip_keeps_labels_and_provenance() {
    let ds = gaussian_mixture(1500, 4, 3, 600.0, 1e5, 41);
    let eps = suggest_eps(&ds.points, 6, 1);
    let rate = 0.6;
    let seed = 7;
    let fit =
        Dbsvec::new(DbsvecConfig::new(eps, 6).with_uniform_sampling(rate, seed)).fit(&ds.points);
    assert!(fit.num_clusters() >= 2, "sampled fit still finds structure");
    let stats = *fit.stats();
    assert!(
        stats.sampled_candidates > 0,
        "a 0.6 draw on 1500 points samples"
    );

    let artifact = ModelArtifact::from_fit(&ds.points, fit.labels(), fit.core_points(), eps, 6)
        .expect("valid sampled fit")
        .with_sampling(SamplingInfo {
            mode: SampledMode::Uniform { rate },
            seed,
            candidates: stats.sampled_candidates,
            total: ds.points.len() as u64,
        });

    let dir = std::env::temp_dir().join(format!("dbsvec-serving-sampled-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model.dbm");
    snapshot::write_file(&artifact, &path).expect("snapshot writes");
    let (restored, _) = snapshot::read_file(&path).expect("snapshot reads");
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(restored, artifact, "disk round trip is lossless");
    let info = restored.sampling.expect("sampling provenance persists");
    assert_eq!(info.mode, SampledMode::Uniform { rate });
    assert_eq!(info.seed, seed);

    let mut engine = Engine::new(&restored);
    assert_eq!(
        engine.sampling(),
        Some(info),
        "engine reports the provenance"
    );
    assert_eq!(engine.health().sampling, Some(info));

    // Serving is transparent to sampling: every training point lands on
    // the label of some reachable core (cores only exist among candidates
    // and promoted neighbors, but the assignment rule is unchanged).
    let served = engine.assign_batch(&ds.points, 2);
    let eps_sq = eps * eps;
    for (i, p) in ds.points.iter() {
        let fitted = fit.labels().get(i as usize);
        match served[i as usize] {
            Assignment::Noise => {
                assert_eq!(fitted, None, "point {i} clustered by the sampled fit");
            }
            Assignment::Cluster(c) => {
                assert!(fitted.is_some(), "sampled fit called point {i} noise");
                let reachable: Vec<u32> = restored
                    .cores
                    .iter()
                    .filter(|(_, core)| squared_euclidean(core, p) <= eps_sq)
                    .map(|(j, _)| restored.core_labels[j as usize])
                    .collect();
                assert!(
                    reachable.contains(&c),
                    "point {i} served label {c} has no reachable core"
                );
            }
        }
    }
}

#[test]
fn served_engine_survives_ingest_and_resnapshot() {
    let ds = gaussian_mixture(1000, 3, 3, 500.0, 1e5, 31);
    let eps = suggest_eps(&ds.points, 6, 2);
    let fit = Dbsvec::new(DbsvecConfig::new(eps, 6)).fit(&ds.points);
    let artifact =
        ModelArtifact::from_fit(&ds.points, fit.labels(), fit.core_points(), eps, 6).unwrap();
    let mut engine = Engine::new(&artifact);

    // Stream in a second sample from the same process; the engine must
    // keep answering and its re-persisted state must reload cleanly.
    let extra = gaussian_mixture(300, 3, 3, 500.0, 1e5, 77);
    for (_, p) in extra.points.iter() {
        engine.ingest(p);
    }
    let snap = engine.snapshot();
    snap.validate().expect("post-ingest snapshot validates");
    let bytes = snapshot::encode(&snap);
    let restored = snapshot::decode(&bytes).expect("post-ingest snapshot decodes");
    let reloaded = Engine::new(&restored);
    for (_, p) in ds.points.iter() {
        assert_eq!(reloaded.classify(p), engine.classify(p));
    }
}
