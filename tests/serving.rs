//! End-to-end serving pipeline through the facade: fit → persist → reload
//! → serve must reproduce the training run's labels (modulo border
//! tie-breaks between clusters), and the reloaded engine must keep
//! serving correctly after online ingest.

use dbsvec::datasets::{gaussian_mixture, standins::suggest_eps, two_moons};
use dbsvec::engine::{snapshot, Assignment, Engine, ModelArtifact};
use dbsvec::geometry::squared_euclidean;
use dbsvec::{Dbsvec, DbsvecConfig};

/// Fit, snapshot to disk, reload, serve the training set back, and check
/// every single label against the fit.
fn fit_save_serve_reproduces(points: &dbsvec::PointSet, eps: f64, min_pts: usize, tag: &str) {
    let fit = Dbsvec::new(DbsvecConfig::new(eps, min_pts)).fit(points);
    let artifact =
        ModelArtifact::from_fit(points, fit.labels(), fit.core_points(), eps, min_pts as u32)
            .expect("valid fit")
            .with_boundaries(points, fit.labels());

    let dir = std::env::temp_dir().join(format!("dbsvec-serving-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model.dbm");
    snapshot::write_file(&artifact, &path).expect("snapshot writes");
    let (restored, _) = snapshot::read_file(&path).expect("snapshot reads");
    assert_eq!(restored, artifact, "disk round trip is lossless");
    std::fs::remove_dir_all(&dir).ok();

    let mut engine = Engine::new(&restored);
    let served = engine.assign_batch(points, 2);
    let eps_sq = eps * eps;
    let core_set: std::collections::HashSet<u32> = fit.core_points().iter().copied().collect();

    let mut border_ties = 0usize;
    for (i, p) in points.iter() {
        let fitted = fit.labels().get(i as usize);
        match served[i as usize] {
            Assignment::Noise => {
                // Noise must match exactly: both sides mean "no verified
                // core within eps" (the paper's Theorems 2-3).
                assert_eq!(fitted, None, "{tag}: point {i} clustered by the fit");
            }
            Assignment::Cluster(c) => {
                assert!(fitted.is_some(), "{tag}: fit called point {i} noise");
                if fitted == Some(c) {
                    continue;
                }
                // A disagreement is only legal for a border point sitting
                // within eps of cores of more than one cluster.
                assert!(
                    !core_set.contains(&i),
                    "{tag}: core point {i} must keep its exact label"
                );
                let reachable: Vec<u32> = restored
                    .cores
                    .iter()
                    .filter(|(_, core)| squared_euclidean(core, p) <= eps_sq)
                    .map(|(j, _)| restored.core_labels[j as usize])
                    .collect();
                assert!(
                    reachable.contains(&c) && reachable.contains(&fitted.unwrap()),
                    "{tag}: point {i} label {c} is not a tie between reachable clusters"
                );
                border_ties += 1;
            }
        }
    }
    assert!(
        border_ties * 100 <= points.len(),
        "{tag}: {border_ties} border ties out of {} points is not 'modulo ties'",
        points.len()
    );
}

#[test]
fn fit_save_serve_reproduces_training_labels() {
    let blobs = gaussian_mixture(1200, 4, 4, 600.0, 1e5, 11);
    let eps = suggest_eps(&blobs.points, 6, 1);
    fit_save_serve_reproduces(&blobs.points, eps, 6, "blobs");

    let moons = two_moons(900, 0.05, 23);
    fit_save_serve_reproduces(&moons.points, 0.15, 5, "moons");
}

#[test]
fn served_engine_survives_ingest_and_resnapshot() {
    let ds = gaussian_mixture(1000, 3, 3, 500.0, 1e5, 31);
    let eps = suggest_eps(&ds.points, 6, 2);
    let fit = Dbsvec::new(DbsvecConfig::new(eps, 6)).fit(&ds.points);
    let artifact =
        ModelArtifact::from_fit(&ds.points, fit.labels(), fit.core_points(), eps, 6).unwrap();
    let mut engine = Engine::new(&artifact);

    // Stream in a second sample from the same process; the engine must
    // keep answering and its re-persisted state must reload cleanly.
    let extra = gaussian_mixture(300, 3, 3, 500.0, 1e5, 77);
    for (_, p) in extra.points.iter() {
        engine.ingest(p);
    }
    let snap = engine.snapshot();
    snap.validate().expect("post-ingest snapshot validates");
    let bytes = snapshot::encode(&snap);
    let restored = snapshot::decode(&bytes).expect("post-ingest snapshot decodes");
    let reloaded = Engine::new(&restored);
    for (_, p) in ds.points.iter() {
        assert_eq!(reloaded.classify(p), engine.classify(p));
    }
}
