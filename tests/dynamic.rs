//! The interleaving oracle harness for dynamic (insert/delete)
//! maintenance.
//!
//! The engine's declarative contract: with tracked set `L` = fitted cores
//! ∪ inserts − removes, a point is core iff it has ≥ MinPts tracked
//! points within ε (itself included), and clusters are the connected
//! components of the core graph (cores within ε of each other). The
//! harness drives seeded SplitMix64 sequences of inserts, deletes, and
//! assigns through the engine while mirroring `L`, and after every
//! operation compares the maintained state against a from-scratch O(n²)
//! oracle: identical core sets, identical partition up to label renaming,
//! identical buffered points and neighbor counts.
//!
//! Base models are built to satisfy the closure property — every fitted
//! core has ≥ MinPts fitted cores within ε and the fitted labels equal
//! the geometric components — so the engine's load-time grandfathering
//! never diverges from the declarative reading and the comparison is
//! exact.

use std::collections::{HashMap, HashSet};

use dbsvec::engine::{Assignment, Engine, IngestOutcome, ModelArtifact, RemoveOutcome};
use dbsvec::geometry::squared_euclidean;
use dbsvec::obs::RecordingObserver;
use dbsvec::PointSet;

/// Thread count from `DBSVEC_TEST_THREADS` (CI runs the suite at 1 and 4;
/// the default exercises the fan-out path cheaply).
fn test_threads() -> usize {
    std::env::var("DBSVEC_TEST_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2)
}

/// SplitMix64: tiny, seedable, and good enough to schedule operations.
struct SplitMix64(u64);

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        Self(seed)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

fn key(p: &[f64]) -> Vec<u64> {
    p.iter().map(|v| v.to_bits()).collect()
}

/// One base model plus the lattice of candidate insert positions around
/// it.
struct Scenario {
    name: &'static str,
    artifact: ModelArtifact,
    pool: Vec<Vec<f64>>,
    eps: f64,
    min_pts: u32,
}

fn make_artifact(cores: Vec<(Vec<f64>, u32)>, eps: f64, min_pts: u32) -> ModelArtifact {
    let mut set = PointSet::new(cores[0].0.len());
    let mut labels = Vec::new();
    for (p, l) in &cores {
        set.push(p);
        labels.push(*l);
    }
    let num_clusters = labels.iter().copied().max().map_or(0, |m| m + 1);
    let artifact = ModelArtifact {
        eps,
        min_pts,
        num_clusters,
        cores: set,
        core_labels: labels,
        boundaries: None,
        quality: None,
        sampling: None,
    };
    artifact.validate().expect("scenario artifact validates");
    artifact
}

fn grid(x0: i32, x1: i32, y0: i32, y1: i32, label: u32) -> Vec<(Vec<f64>, u32)> {
    let mut out = Vec::new();
    for x in x0..=x1 {
        for y in y0..=y1 {
            out.push((vec![x as f64, y as f64], label));
        }
    }
    out
}

/// Half-step lattice covering the scenario's neighborhood.
fn lattice(x0: f64, x1: f64, y0: f64, y1: f64) -> Vec<Vec<f64>> {
    let mut out = Vec::new();
    let mut x = x0;
    while x <= x1 + 1e-9 {
        let mut y = y0;
        while y <= y1 + 1e-9 {
            out.push(vec![x, y]);
            y += 0.5;
        }
        x += 0.5;
    }
    out
}

/// Three base models at three MinPts settings, each satisfying closure:
/// with ε = 1.5 a 5×5 unit grid point sees its orthogonal and diagonal
/// neighbors (a corner has 3 + itself = MinPts 4); with ε = 1.2 a 3×3
/// grid point sees only orthogonal neighbors (corner: 2 + itself =
/// MinPts 3); with ε = 1.1 a unit chain endpoint sees 1 + itself =
/// MinPts 2.
fn scenarios() -> Vec<Scenario> {
    let grid5 = grid(0, 4, 0, 4, 0);
    let mut two = grid(0, 2, 0, 2, 0);
    two.extend(grid(6, 8, 0, 2, 1));
    let chain: Vec<(Vec<f64>, u32)> = (0..20).map(|i| (vec![i as f64, 0.0], 0)).collect();
    vec![
        Scenario {
            name: "grid5",
            artifact: make_artifact(grid5, 1.5, 4),
            pool: lattice(-1.0, 5.0, -1.0, 5.0),
            eps: 1.5,
            min_pts: 4,
        },
        Scenario {
            name: "two-grids",
            artifact: make_artifact(two, 1.2, 3),
            pool: lattice(-1.0, 9.0, -1.0, 3.0),
            eps: 1.2,
            min_pts: 3,
        },
        Scenario {
            name: "chain",
            artifact: make_artifact(chain, 1.1, 2),
            pool: lattice(-1.0, 20.0, -1.0, 1.0),
            eps: 1.1,
            min_pts: 2,
        },
    ]
}

/// The from-scratch oracle over the mirrored tracked set.
struct Oracle {
    /// Core coordinate key → geometric component id.
    core_comp: HashMap<Vec<u64>, usize>,
    /// Number of components.
    ncomp: usize,
    /// Non-core coordinate key → tracked neighbor count (self included).
    buffered: HashMap<Vec<u64>, u32>,
}

fn oracle(live: &[Vec<f64>], eps_sq: f64, min_pts: u32) -> Oracle {
    let n = live.len();
    let mut count = vec![0u32; n];
    for i in 0..n {
        for j in 0..n {
            if squared_euclidean(&live[i], &live[j]) <= eps_sq {
                count[i] += 1;
            }
        }
    }
    let is_core: Vec<bool> = count.iter().map(|&c| c >= min_pts).collect();
    let mut comp = vec![usize::MAX; n];
    let mut ncomp = 0;
    for i in 0..n {
        if !is_core[i] || comp[i] != usize::MAX {
            continue;
        }
        comp[i] = ncomp;
        let mut stack = vec![i];
        while let Some(u) = stack.pop() {
            for v in 0..n {
                if is_core[v]
                    && comp[v] == usize::MAX
                    && squared_euclidean(&live[u], &live[v]) <= eps_sq
                {
                    comp[v] = ncomp;
                    stack.push(v);
                }
            }
        }
        ncomp += 1;
    }
    let mut core_comp = HashMap::new();
    let mut buffered = HashMap::new();
    for i in 0..n {
        if is_core[i] {
            core_comp.insert(key(&live[i]), comp[i]);
        } else {
            buffered.insert(key(&live[i]), count[i]);
        }
    }
    Oracle {
        core_comp,
        ncomp,
        buffered,
    }
}

/// Compares the engine's maintained state against the oracle: equal core
/// sets, a label↔component bijection, equal cluster counts, and equal
/// buffered points with equal neighbor counts. Returns the label →
/// component map for assignment checks.
fn check_state(
    engine: &Engine,
    live: &[Vec<f64>],
    eps_sq: f64,
    min_pts: u32,
    tag: &str,
) -> HashMap<u32, usize> {
    let o = oracle(live, eps_sq, min_pts);
    let snap = engine.snapshot();
    assert_eq!(
        snap.cores.len(),
        o.core_comp.len(),
        "{tag}: engine has {} cores, oracle {}",
        snap.cores.len(),
        o.core_comp.len()
    );
    let mut fwd: HashMap<u32, usize> = HashMap::new();
    let mut rev: HashMap<usize, u32> = HashMap::new();
    for (i, p) in snap.cores.iter() {
        let c = *o
            .core_comp
            .get(&key(p))
            .unwrap_or_else(|| panic!("{tag}: engine core {p:?} is not an oracle core"));
        let l = snap.core_labels[i as usize];
        assert_eq!(
            *fwd.entry(l).or_insert(c),
            c,
            "{tag}: engine label {l} straddles oracle components"
        );
        assert_eq!(
            *rev.entry(c).or_insert(l),
            l,
            "{tag}: oracle component {c} straddles engine labels"
        );
    }
    assert_eq!(
        snap.num_clusters as usize, o.ncomp,
        "{tag}: cluster count mismatch"
    );
    let got: HashMap<Vec<u64>, u32> = engine
        .buffered_view()
        .iter()
        .map(|(p, c)| (key(p), *c))
        .collect();
    assert_eq!(got, o.buffered, "{tag}: buffered set or counts mismatch");
    fwd
}

/// One seeded interleaving: inserts from the lattice pool, deletes of
/// random tracked points, misses on never-tracked points, and threaded
/// assign batches verified against the oracle — full state comparison
/// after every operation.
fn run_sequence(s: &Scenario, seed: u64, ops: usize) {
    let mut engine = Engine::new(&s.artifact);
    let mut rng = SplitMix64::new(seed);
    let eps_sq = s.eps * s.eps;
    let dims = s.artifact.cores.dims();
    let mut live: Vec<Vec<f64>> = s.artifact.cores.iter().map(|(_, p)| p.to_vec()).collect();
    check_state(
        &engine,
        &live,
        eps_sq,
        s.min_pts,
        &format!("{} load", s.name),
    );

    for op in 0..ops {
        let tag = format!("{} seed {seed} op {op}", s.name);
        match rng.below(10) {
            0..=3 => {
                let p = s.pool[rng.below(s.pool.len())].clone();
                let dup = live.contains(&p);
                let out = engine.ingest(&p);
                assert_eq!(
                    matches!(out, IngestOutcome::Duplicate),
                    dup,
                    "{tag}: duplicate detection on {p:?}"
                );
                if !dup {
                    live.push(p);
                }
            }
            4..=7 => {
                if live.is_empty() {
                    continue;
                }
                let p = live.swap_remove(rng.below(live.len()));
                let out = engine.remove(&p);
                assert!(
                    matches!(out, RemoveOutcome::Removed { .. }),
                    "{tag}: tracked point {p:?} was not removed: {out:?}"
                );
            }
            8 => {
                // Outside every pool's bounding box: never tracked.
                let far = vec![500.0 + op as f64; dims];
                assert_eq!(engine.remove(&far), RemoveOutcome::NotFound, "{tag}");
            }
            _ => {
                let mut queries = PointSet::new(dims);
                for _ in 0..4 {
                    queries.push(&s.pool[rng.below(s.pool.len())]);
                }
                let fwd = check_state(&engine, &live, eps_sq, s.min_pts, &tag);
                let o = oracle(&live, eps_sq, s.min_pts);
                let answers = engine.assign_batch(&queries, test_threads());
                for (qi, q) in queries.iter() {
                    // Components of the nearest cores within ε (several
                    // on an exact distance tie).
                    let mut best = f64::INFINITY;
                    let mut allowed: HashSet<usize> = HashSet::new();
                    for p in live.iter().filter(|p| o.core_comp.contains_key(&key(p))) {
                        let d = squared_euclidean(p, q);
                        if d > eps_sq {
                            continue;
                        }
                        if d < best {
                            best = d;
                            allowed.clear();
                        }
                        if d <= best {
                            allowed.insert(o.core_comp[&key(p)]);
                        }
                    }
                    match answers[qi as usize] {
                        Assignment::Noise => {
                            assert!(
                                allowed.is_empty(),
                                "{tag}: {q:?} labeled noise with a core in range"
                            )
                        }
                        Assignment::Cluster(l) => assert!(
                            allowed.contains(&fwd[&l]),
                            "{tag}: {q:?} got label {l}, not the nearest core's cluster"
                        ),
                    }
                }
            }
        }
        check_state(&engine, &live, eps_sq, s.min_pts, &tag);
    }
}

#[test]
fn maintained_state_matches_refit_oracle_under_random_interleavings() {
    for s in scenarios() {
        for seed in [11, 42] {
            run_sequence(&s, seed, 220);
        }
    }
}

/// Scripted bridge-build / bridge-teardown on the two-grid model: the
/// bridge promotions must MERGE the clusters (asserted via replayed Merge
/// events), and removing the keystone must demote its neighbors and SPLIT
/// the merged cluster back apart (asserted via replayed Split events) —
/// leaving exactly the oracle's partition.
#[test]
fn bridge_build_then_teardown_merges_then_splits() {
    let s = &scenarios()[1]; // two 3×3 grids, ε 1.2, MinPts 3
    let eps_sq = s.eps * s.eps;
    let mut engine = Engine::new(&s.artifact);
    let mut rec = RecordingObserver::new();
    let mut live: Vec<Vec<f64>> = s.artifact.cores.iter().map(|(_, p)| p.to_vec()).collect();
    assert_eq!(engine.num_clusters(), 2);

    // Build the bridge: the outer points buffer (one tracked neighbor
    // each), the keystone arrives with three tracked neighbors and
    // promotes, ripening both outer points — whose promotions join the
    // two grids.
    for p in [[3.0, 1.0], [5.0, 1.0], [4.0, 1.0]] {
        engine.ingest_observed(&p, &mut rec);
        live.push(p.to_vec());
    }
    let counts = rec.replay();
    assert!(counts.merges >= 1, "bridge must merge: {counts:?}");
    assert_eq!(engine.num_clusters(), 1);
    check_state(&engine, &live, eps_sq, s.min_pts, "bridge built");

    // Tear out the keystone: both outer bridge points drop below MinPts
    // and demote, and the component splits back into the two grids.
    let out = engine.remove_observed(&[4.0, 1.0], &mut rec);
    live.retain(|p| p != &vec![4.0, 1.0]);
    assert_eq!(
        out,
        RemoveOutcome::Removed {
            was_core: true,
            demoted: 2,
            splits: 1,
        }
    );
    let counts = rec.replay();
    assert_eq!(counts.removals, 1, "{counts:?}");
    assert_eq!(counts.demotions, 2, "{counts:?}");
    assert!(counts.splits >= 1, "teardown must split: {counts:?}");
    assert_eq!(engine.num_clusters(), 2);
    check_state(&engine, &live, eps_sq, s.min_pts, "bridge torn down");

    // A miss is typed, counted, and changes nothing.
    assert_eq!(
        engine.remove_observed(&[400.0, 0.0], &mut rec),
        RemoveOutcome::NotFound
    );
    assert_eq!(rec.replay().remove_misses, 1);
    check_state(&engine, &live, eps_sq, s.min_pts, "after miss");
}
