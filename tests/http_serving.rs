//! End-to-end HTTP serving through the facade: fit two models, persist
//! them, serve both sharded over the std-only HTTP tier, and check that
//! every label returned over the socket is identical to what an
//! in-process [`Engine::assign`] produces for the same point — the HTTP
//! hop, the JSON round trip, and the point-to-shard hashing must all be
//! label-transparent.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

use dbsvec::datasets::{gaussian_mixture, standins::suggest_eps, two_moons};
use dbsvec::engine::{snapshot, Engine, ModelArtifact};
use dbsvec::obs::NoopObserver;
use dbsvec::server::{Router, Server, ServerConfig, ShutdownFlag};
use dbsvec::{Dbsvec, DbsvecConfig, PointSet};

fn fit_artifact(points: &PointSet, min_pts: usize, seed: u64) -> ModelArtifact {
    let eps = suggest_eps(points, min_pts, seed);
    let fit = Dbsvec::new(DbsvecConfig::new(eps, min_pts)).fit(points);
    ModelArtifact::from_fit(points, fit.labels(), fit.core_points(), eps, min_pts as u32)
        .expect("valid fit")
}

fn post(addr: std::net::SocketAddr, path: &str, body: &str) -> (u16, String) {
    let mut conn = TcpStream::connect(addr).unwrap();
    let head = format!(
        "POST {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    conn.write_all(head.as_bytes()).unwrap();
    conn.write_all(body.as_bytes()).unwrap();
    let mut raw = String::new();
    conn.read_to_string(&mut raw).unwrap();
    let status: u16 = raw.split_whitespace().nth(1).unwrap().parse().unwrap();
    let body = raw.split_once("\r\n\r\n").map(|(_, b)| b).unwrap_or("");
    (status, body.to_string())
}

/// Extracts the `"clusters":[...]` array of a batch assign response as
/// `Option<u32>` labels.
fn parse_clusters(body: &str, expect: usize) -> Vec<Option<u32>> {
    let arr = body
        .split("\"clusters\":[")
        .nth(1)
        .and_then(|rest| rest.split(']').next())
        .unwrap_or_else(|| panic!("no clusters array in {body}"));
    let labels: Vec<Option<u32>> = arr
        .split(',')
        .map(|tok| {
            if tok == "null" {
                None
            } else {
                Some(tok.parse().unwrap_or_else(|_| panic!("bad label {tok:?}")))
            }
        })
        .collect();
    assert_eq!(labels.len(), expect, "body: {body}");
    labels
}

#[test]
fn http_labels_match_in_process_assign_across_two_sharded_models() {
    // Two genuinely different models: 2-d moons and an 8-d mixture.
    let moons = two_moons(600, 0.05, 41);
    let mixture = gaussian_mixture(2_000, 8, 4, 60.0, 1e4, 42);
    let moons_art = fit_artifact(&moons.points, 5, 41);
    let mixture_art = fit_artifact(&mixture.points, 8, 42);

    // fit --save: persist both, then serve from the files alone.
    let dir = std::env::temp_dir().join(format!("dbsvec-http-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    snapshot::write_file(&moons_art, dir.join("moons.dbm")).unwrap();
    snapshot::write_file(&mixture_art, dir.join("mixture.dbm")).unwrap();

    let mut router = Router::new();
    router.load_model(dir.join("moons.dbm"), 2, None).unwrap();
    router.load_model(dir.join("mixture.dbm"), 3, None).unwrap();
    let server = Server::bind(
        Arc::new(router),
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 2,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr().unwrap();
    let shutdown = ShutdownFlag::new();
    let flag = shutdown.clone();
    let handle = std::thread::spawn(move || server.run(&flag, &mut NoopObserver));

    for (name, artifact, queries) in [
        ("moons", &moons_art, &moons.points),
        ("mixture", &mixture_art, &mixture.points),
    ] {
        let mut reference = Engine::new(artifact);
        // Batch bodies of 50 queries: exercises per-shard grouping and
        // request-order scatter, not just single-point routing.
        let total = 250.min(queries.len());
        for lo in (0..total).step_by(50) {
            let hi = (lo + 50).min(total);
            let rows: Vec<String> = (lo..hi)
                .map(|i| {
                    let p = queries.point(i as u32);
                    let coords: Vec<String> = p.iter().map(|v| format!("{v}")).collect();
                    format!("[{}]", coords.join(","))
                })
                .collect();
            let body = format!("{{\"points\":[{}]}}", rows.join(","));
            let (status, resp) = post(addr, &format!("/v1/models/{name}/assign"), &body);
            assert_eq!(status, 200, "{name}: {resp}");
            let served = parse_clusters(&resp, hi - lo);
            for (k, i) in (lo..hi).enumerate() {
                let want = reference.assign(queries.point(i as u32)).cluster();
                assert_eq!(
                    served[k], want,
                    "{name}: query {i} differs over HTTP vs in-process"
                );
            }
        }
    }

    shutdown.request();
    let report = handle.join().unwrap().unwrap();
    assert_eq!(report.errors, 0);
    assert!(report.requests >= 10);
    std::fs::remove_dir_all(&dir).ok();
}
