//! Integration tests for the telemetry layer against *real* runs: the
//! [`MetricsObserver`] fed the same trace as a [`RecordingObserver`] must
//! land counters that match [`ReplayCounts`] field for field, whether it
//! listens live (via [`Tee`]) or replays the recorded stream afterwards.

use dbsvec::datasets::gaussian_mixture;
use dbsvec::engine::{Engine, ModelArtifact};
use dbsvec::obs::telemetry::parse_prometheus;
use dbsvec::obs::{
    Event, HttpStages, MetricsObserver, Observer, Phase, Record, RecordingObserver, Registry,
    ReplayCounts, Tee,
};
use dbsvec::{Dbsvec, DbsvecConfig};

/// Every `MetricsObserver` counter equals its `ReplayCounts` field.
fn assert_counters_match(reg: &Registry, r: &ReplayCounts) {
    let c = |name: &str| {
        reg.counter_value(name)
            .unwrap_or_else(|| panic!("counter {name} not registered"))
    };
    assert_eq!(c("dbsvec_seeds_total"), r.seeds);
    assert_eq!(c("dbsvec_svdd_trainings_total"), r.svdd_trainings);
    assert_eq!(c("dbsvec_support_vectors_total"), r.support_vectors);
    assert_eq!(
        c("dbsvec_core_support_vectors_total"),
        r.core_support_vectors
    );
    assert_eq!(c("dbsvec_merges_total"), r.merges);
    assert_eq!(c("dbsvec_noise_candidates_total"), r.noise_candidates);
    assert_eq!(c("dbsvec_noise_confirmed_total"), r.noise_confirmed);
    assert_eq!(c("dbsvec_range_queries_total"), r.range_queries);
    assert_eq!(c("dbsvec_expansion_rounds_total"), r.expansion_rounds);
    assert_eq!(c("dbsvec_smo_iterations_total"), r.smo_iterations);
    assert_eq!(c("dbsvec_assigns_total"), r.assigns);
    assert_eq!(c("dbsvec_assign_hits_total"), r.assign_hits);
    assert_eq!(c("dbsvec_ingests_total"), r.ingests);
    assert_eq!(c("dbsvec_ingest_duplicates_total"), r.ingest_duplicates);
    assert_eq!(c("dbsvec_promotions_total"), r.promotions);
    assert_eq!(c("dbsvec_snapshot_writes_total"), r.snapshot_writes);
    assert_eq!(c("dbsvec_snapshot_loads_total"), r.snapshot_loads);
    assert_eq!(c("dbsvec_http_requests_total"), r.http_requests);
    assert_eq!(c("dbsvec_http_errors_total"), r.http_errors);
    assert_eq!(
        reg.histogram_by_name("dbsvec_http_request_duration_seconds")
            .expect("http duration histogram registered")
            .histogram()
            .count(),
        r.http_requests,
        "every http request must land one duration observation"
    );
    assert_eq!(
        reg.gauge_value("dbsvec_max_target_size"),
        Some(r.max_target_size as f64)
    );
}

/// Fits a model and serves/ingests traffic through one teed trace,
/// recorded by both observers at once.
fn traced_run() -> (RecordingObserver, MetricsObserver) {
    let ds = gaussian_mixture(2000, 6, 4, 900.0, 1e5, 13);
    let eps = dbsvec::datasets::standins::suggest_eps(&ds.points, 10, 2);
    let mut recorder = RecordingObserver::new();
    let mut metrics = MetricsObserver::new();
    let result = Dbsvec::new(DbsvecConfig::new(eps, 10))
        .fit_observed(&ds.points, &mut Tee(&mut recorder, &mut metrics));
    assert!(result.num_clusters() >= 2, "want a multi-cluster run");

    // Serving traffic over the fitted model, through the same seam.
    let artifact =
        ModelArtifact::from_fit(&ds.points, result.labels(), result.core_points(), eps, 10)
            .expect("fit produces a valid artifact");
    let mut engine = Engine::new(&artifact);
    let mut tee = Tee(&mut recorder, &mut metrics);
    tee.event(&Event::SnapshotLoad { bytes: 1024 });
    for i in 0..50u32 {
        engine.assign_observed(ds.points.point(i), &mut tee);
    }
    for i in 0..20u32 {
        engine.ingest_observed(ds.points.point(i), &mut tee);
    }
    tee.event(&Event::SnapshotWrite { bytes: 1024 });
    tee.event(&Event::HttpRequest {
        endpoint: "assign".to_string(),
        status: 200,
        points: 1,
        request_id: 1,
        duration_us: 820,
        stages: HttpStages {
            queue_us: 30,
            parse_us: 150,
            route_us: 5,
            lock_us: 10,
            engine_us: 500,
            serialize_us: 45,
            write_us: 80,
        },
    });
    tee.event(&Event::HttpRequest {
        endpoint: "error".to_string(),
        status: 404,
        points: 0,
        request_id: 2,
        duration_us: 95,
        stages: HttpStages {
            parse_us: 60,
            write_us: 35,
            ..Default::default()
        },
    });
    (recorder, metrics)
}

#[test]
fn live_metrics_observer_matches_replay_counts_field_for_field() {
    let (recorder, metrics) = traced_run();
    let replay = recorder.replay();
    assert!(replay.seeds > 0 && replay.assigns == 50 && replay.ingests == 20);
    assert_eq!(replay.snapshot_loads, 1);
    assert_eq!(replay.snapshot_writes, 1);
    assert_eq!(replay.http_requests, 2);
    assert_eq!(replay.http_errors, 1);
    assert_counters_match(metrics.registry(), &replay);
}

#[test]
fn replaying_a_recorded_trace_reproduces_the_live_counters() {
    let (recorder, live) = traced_run();

    // Feed the recorded stream — spans and events, in arrival order —
    // into a fresh MetricsObserver, as a trace consumer would.
    let mut replayed = MetricsObserver::new();
    for record in recorder.records() {
        match record {
            Record::Enter { phase, .. } => replayed.span_enter(*phase),
            Record::Exit { phase, .. } => replayed.span_exit(*phase),
            Record::Event { event, .. } => replayed.event(event),
        }
    }
    assert_counters_match(replayed.registry(), &recorder.replay());

    // Counter-for-counter identical to the live observer (durations
    // differ, but counts of spans per phase must agree too).
    for ((live_name, _, live_value), (replay_name, _, replay_value)) in live
        .registry()
        .counters()
        .zip(replayed.registry().counters())
    {
        assert_eq!(live_name, replay_name);
        assert_eq!(live_value, replay_value, "counter {live_name} diverged");
    }
    for phase in Phase::ALL {
        let name = format!("dbsvec_phase_{}_seconds", phase.name());
        let spans = |reg: &Registry| reg.histogram_by_name(&name).unwrap().histogram().count();
        assert_eq!(
            spans(live.registry()),
            spans(replayed.registry()),
            "span count for {name} diverged"
        );
    }
}

#[test]
fn metrics_observer_registry_renders_as_valid_prometheus() {
    let (_, metrics) = traced_run();
    let text = dbsvec::obs::telemetry::render_prometheus(metrics.registry());
    let samples = parse_prometheus(&text).expect("exposition parses");
    let assigns = samples
        .iter()
        .find(|s| s.name == "dbsvec_assigns_total")
        .expect("assigns counter exposed");
    assert_eq!(assigns.value, 50.0);
    // The fit ran inside phase spans, so at least one phase summary has
    // a quantile sample.
    assert!(samples
        .iter()
        .any(|s| s.name.starts_with("dbsvec_phase_") && s.label("quantile").is_some()));
}
