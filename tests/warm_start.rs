//! Warm-started SMO is an optimization, not a semantic change: fitting
//! with the default warm-start + shrinking solver must produce the exact
//! cluster labels the `cold_start()` solver produces on the tier-1 fixture
//! datasets, with both terminating at the same KKT tolerance (no training
//! may exhaust its iteration budget), at every tested thread count.
//!
//! Labels are compared with exact equality — not recall or ARI — because
//! the warm start only changes the solver's *path* to the ε-optimal dual,
//! and the support-vector sets that drive expansion must be unaffected.

use dbsvec::core::{Clustering, DbsvecStats};
use dbsvec::datasets::{chameleon_t48k, gaussian_mixture, random_walk_clusters, RandomWalkConfig};
use dbsvec::{Dbsvec, DbsvecConfig, PointSet};

/// Thread count from `DBSVEC_TEST_THREADS` (CI runs the suite at 1 and 4;
/// the default of 2 keeps the parallel path exercised locally).
fn test_threads() -> usize {
    std::env::var("DBSVEC_TEST_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2)
}

fn fit(points: &PointSet, config: DbsvecConfig) -> (Clustering, DbsvecStats) {
    let result = Dbsvec::new(config.with_threads(test_threads())).fit(points);
    let stats = *result.stats();
    (result.into_labels(), stats)
}

/// Warm and cold fits on one dataset: exact label equality and full
/// convergence (KKT ≤ tolerance) on both sides. Core *sets* may differ by
/// a few marginal support vectors (both duals are ε-optimal, not equal);
/// the labels may not.
fn assert_equivalent(name: &str, points: &PointSet, eps: f64, min_pts: usize) {
    let (warm_labels, warm_stats) = fit(points, DbsvecConfig::new(eps, min_pts));
    let (cold_labels, cold_stats) = fit(points, DbsvecConfig::new(eps, min_pts).cold_start());

    assert_eq!(
        warm_labels, cold_labels,
        "{name}: warm-start + shrinking changed the cluster labels"
    );
    // Both solvers must have terminated by convergence, i.e. at KKT
    // violation ≤ the shared tolerance — never by budget exhaustion.
    assert_eq!(
        warm_stats.iterations_exhausted, 0,
        "{name}: a warm training exhausted its iteration budget"
    );
    assert_eq!(
        cold_stats.iterations_exhausted, 0,
        "{name}: a cold training exhausted its iteration budget"
    );
    // The solver-path counters must reflect the configuration: cold fits
    // never warm-start; warm fits reuse α whenever a sub-cluster trains
    // more than once.
    assert_eq!(cold_stats.warm_started_trainings, 0, "{name}");
    // One solver session per seeded sub-cluster, whose first solve is
    // necessarily cold: every remaining training must have warm-started.
    assert_eq!(
        warm_stats.warm_started_trainings,
        warm_stats.svdd_trainings - warm_stats.seeds,
        "{name}: every non-first training of a sub-cluster should warm-start",
    );
    // Note: round/query counts may differ by a hair between the two sides
    // (both duals are ε-optimal but not identical, so an SV set can differ
    // marginally and spend one extra round discovering nothing) — the
    // labels above are the contract, and they may not.
}

#[test]
fn chameleon_labels_are_identical_warm_vs_cold() {
    let ds = chameleon_t48k(42);
    let min_pts = 10;
    let eps = dbsvec::datasets::standins::suggest_eps(&ds.points, min_pts, 1);
    assert_equivalent("chameleon_t48k", &ds.points, eps, min_pts);
}

#[test]
fn gaussian_mixture_labels_are_identical_warm_vs_cold() {
    for (d, k) in [(2usize, 8usize), (9, 4), (16, 6)] {
        let ds = gaussian_mixture(1200, d, k, 1000.0, 1e5, 7 + d as u64);
        let min_pts = 8;
        let eps = dbsvec::datasets::standins::suggest_eps(&ds.points, min_pts, 2);
        assert_equivalent(&format!("gaussian d={d}"), &ds.points, eps, min_pts);
    }
}

#[test]
fn random_walk_labels_are_identical_warm_vs_cold() {
    let ds = random_walk_clusters(&RandomWalkConfig::paper_default(8000, 8), 3);
    assert_equivalent("random_walk", &ds.points, 5000.0, 100);
}

#[test]
fn shrinking_alone_is_label_invariant_too() {
    // Isolate the shrinking heuristic: warm start off, shrinking on vs off.
    let ds = random_walk_clusters(&RandomWalkConfig::paper_default(4000, 8), 5);
    let mut shrink_only = DbsvecConfig::new(5000.0, 100).cold_start();
    shrink_only.smo.shrinking = true;
    shrink_only.smo.shrink_interval = 10; // force it to fire on small targets
    let (a, a_stats) = fit(&ds.points, shrink_only);
    let (b, b_stats) = fit(&ds.points, DbsvecConfig::new(5000.0, 100).cold_start());
    assert_eq!(a, b, "shrinking changed the cluster labels");
    assert_eq!(a_stats.iterations_exhausted, 0);
    assert_eq!(b_stats.iterations_exhausted, 0);
}
