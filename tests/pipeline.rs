//! End-to-end pipeline: generate → cluster → persist → reload → evaluate.

use std::path::PathBuf;

use dbsvec::baselines::Dbscan;
use dbsvec::datasets::io::{read_csv, write_csv};
use dbsvec::datasets::{chameleon_t710k, gaussian_mixture, normalize_to_domain, OpenDataset};
use dbsvec::index::{CountingIndex, RStarTree};
use dbsvec::metrics::{davies_bouldin_separation, recall, silhouette_compactness};
use dbsvec::{Dbsvec, DbsvecConfig};

fn tempfile(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("dbsvec-pipeline-{}-{name}", std::process::id()));
    p
}

#[test]
fn cluster_persist_reload_evaluate() {
    let standin = OpenDataset::Seeds.generate(5);
    let points = &standin.dataset.points;
    let result = Dbsvec::new(DbsvecConfig::new(
        standin.suggested.eps,
        standin.suggested.min_pts,
    ))
    .fit(points);

    // Persist points + labels, read back, and verify the round trip.
    let path = tempfile("seeds.csv");
    write_csv(&path, points, Some(result.labels().assignments())).unwrap();
    let (reloaded_points, reloaded_labels) = read_csv(&path).unwrap();
    std::fs::remove_file(&path).ok();

    assert_eq!(&reloaded_points, points);
    let labels = reloaded_labels.expect("labels column present");
    assert_eq!(labels, result.labels().assignments());

    // Metrics computed on the reloaded data agree with the originals.
    let c1 = silhouette_compactness(points, result.labels().assignments());
    let c2 = silhouette_compactness(&reloaded_points, &labels);
    assert_eq!(c1, c2);
}

#[test]
fn t710k_full_quality_pipeline() {
    // The paper's second shape benchmark, end to end at full size.
    let ds = chameleon_t710k(21);
    let min_pts = 10;
    let eps = dbsvec::datasets::standins::suggest_eps(&ds.points, min_pts, 9);

    let dbscan = Dbscan::new(eps, min_pts).fit(&ds.points);
    let dbsvec = Dbsvec::new(DbsvecConfig::new(eps, min_pts)).fit(&ds.points);

    let r = recall(
        dbscan.clustering.assignments(),
        dbsvec.labels().assignments(),
    );
    assert!(r > 0.99, "t7.10k recall {r} (paper: 0.997–1.000)");

    // Internal validity sanity: the clustering should beat a one-cluster
    // degenerate labeling on both measures.
    let c = silhouette_compactness(&ds.points, dbsvec.labels().assignments());
    assert!(c > 0.0, "compactness {c} not positive");
    let s = davies_bouldin_separation(&ds.points, dbsvec.labels().assignments());
    assert!(s.is_finite() && s > 0.0);
}

#[test]
fn normalization_preserves_clustering_structure() {
    // Normalizing to the paper's [0, 1e5] domain rescales eps linearly but
    // must not change which points cluster together (isotropic data).
    let standin = OpenDataset::Dim32.generate(3);
    let points = &standin.dataset.points;
    let before = Dbsvec::new(DbsvecConfig::new(
        standin.suggested.eps,
        standin.suggested.min_pts,
    ))
    .fit(points);

    // Points were generated in [0, 1e5] already; renormalizing to [0, 1e3]
    // shrinks every dimension by ~100x (up to per-dimension extents).
    let shrunk = normalize_to_domain(points, 1000.0);
    let eps = dbsvec::datasets::standins::suggest_eps(&shrunk, standin.suggested.min_pts, 1);
    let after = Dbsvec::new(DbsvecConfig::new(eps, standin.suggested.min_pts)).fit(&shrunk);

    let r = recall(before.labels().assignments(), after.labels().assignments());
    assert!(r > 0.98, "normalization changed the clustering: recall {r}");
    assert_eq!(before.num_clusters(), after.num_clusters());
}

#[test]
fn reported_range_queries_match_the_index_counters() {
    // `DbsvecStats.range_queries` (what θ and Table II are computed from)
    // must equal what the index itself saw — every query goes through the
    // counted seam, none is double-counted.
    let ds = gaussian_mixture(3000, 8, 6, 900.0, 1e5, 17);
    let eps = dbsvec::datasets::standins::suggest_eps(&ds.points, 10, 2);
    let index = CountingIndex::new(RStarTree::build(&ds.points));

    let result = Dbsvec::new(DbsvecConfig::new(eps, 10)).fit_with_index(&ds.points, &index);

    assert!(result.num_clusters() >= 2, "want multi-cluster data");
    let counted = index.stats();
    assert_eq!(result.stats().range_queries, counted.queries);
    // And the headline claim the accounting exists for: θ ≪ 1.
    assert!(result.stats().theta(ds.points.len()) < 0.5);
}

#[test]
fn facade_one_liner_works() {
    let standin = OpenDataset::BreastCancer.generate(1);
    let clustering = dbsvec::dbsvec(
        &standin.dataset.points,
        standin.suggested.eps,
        standin.suggested.min_pts,
    );
    assert_eq!(clustering.len(), standin.dataset.len());
    assert!(clustering.num_clusters() >= 1);
}
