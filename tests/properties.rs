//! Randomized property tests over the core data structures and invariants.
//!
//! Deterministic SplitMix64-driven instance loops; fixed seeds make every
//! failure exactly reproducible.

use dbsvec::baselines::Dbscan;
use dbsvec::engine::{Assignment, Engine, ModelArtifact};
use dbsvec::geometry::rng::SplitMix64;
use dbsvec::geometry::squared_euclidean;
use dbsvec::index::{GridIndex, KdTree, LinearScan, RStarTree, RangeIndex};
use dbsvec::metrics::{adjusted_rand_index, recall};
use dbsvec::svdd::{GaussianKernel, SvddProblem};
use dbsvec::{Dbsvec, DbsvecConfig, PointSet};

/// A point set of 1..=max_n points in 1..=max_d dimensions with bounded
/// coordinates.
fn point_set(rng: &mut SplitMix64, max_n: usize, max_d: usize) -> PointSet {
    let d = 1 + rng.next_below(max_d as u64) as usize;
    let n = 1 + rng.next_below(max_n as u64) as usize;
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..d).map(|_| rng.next_f64_range(-100.0, 100.0)).collect())
        .collect();
    PointSet::from_rows(&rows)
}

/// Thread count for the parallel-fit property tests, from the
/// `DBSVEC_TEST_THREADS` environment variable (CI runs the suite at 1 and
/// 4; the default of 2 keeps the parallel path exercised locally).
fn test_threads() -> usize {
    std::env::var("DBSVEC_TEST_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2)
}

/// A clustering assignment over n points (≈80% clustered into 5 labels).
fn assignment(rng: &mut SplitMix64, n: usize) -> Vec<Option<u32>> {
    (0..n)
        .map(|_| {
            if rng.next_f64() < 0.8 {
                Some(rng.next_below(5) as u32)
            } else {
                None
            }
        })
        .collect()
}

#[test]
fn all_indexes_agree_with_linear_scan() {
    let mut rng = SplitMix64::new(0xF001);
    for _ in 0..64 {
        let ps = point_set(&mut rng, 120, 4);
        let query: Vec<f64> = (0..ps.dims())
            .map(|_| rng.next_f64_range(-120.0, 120.0))
            .collect();
        let eps = rng.next_f64_range(0.1, 150.0);
        let mut expected = LinearScan::build(&ps).range_vec(&query, eps);
        expected.sort_unstable();

        let mut kd = KdTree::build(&ps).range_vec(&query, eps);
        kd.sort_unstable();
        assert_eq!(kd, expected);

        let mut rstar = RStarTree::build(&ps).range_vec(&query, eps);
        rstar.sort_unstable();
        assert_eq!(rstar, expected);

        let mut grid = GridIndex::build(&ps, eps.max(1.0)).range_vec(&query, eps);
        grid.sort_unstable();
        assert_eq!(grid, expected);
    }
}

#[test]
fn incremental_rstar_agrees_with_bulk_load() {
    let mut rng = SplitMix64::new(0xF002);
    for _ in 0..64 {
        let ps = point_set(&mut rng, 80, 3);
        let bulk = RStarTree::build(&ps);
        let mut incremental = RStarTree::new(&ps);
        for id in 0..ps.len() as u32 {
            incremental.insert(id);
        }
        let query = vec![0.0; ps.dims()];
        for eps in [1.0, 10.0, 50.0, 200.0] {
            let mut a = bulk.range_vec(&query, eps);
            let mut b = incremental.range_vec(&query, eps);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }
}

#[test]
fn svdd_solution_is_a_feasible_simplex_point() {
    let mut rng = SplitMix64::new(0xF003);
    for _ in 0..64 {
        let ps = point_set(&mut rng, 60, 3);
        let nu = rng.next_f64_range(0.05, 1.0);
        let ids: Vec<u32> = (0..ps.len() as u32).collect();
        let model = SvddProblem::new(&ps, &ids, GaussianKernel::from_width(5.0))
            .with_nu(nu.max(1.0 / ids.len() as f64))
            .solve();
        let sum: f64 = model.alphas().iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "sum = {sum}");
        let c = 1.0 / (nu.max(1.0 / ids.len() as f64) * ids.len() as f64);
        for &a in model.alphas() {
            assert!(a >= -1e-12 && a <= c + 1e-9);
        }
        assert!(model.num_support_vectors() >= 1);
    }
}

#[test]
fn svdd_sphere_contains_most_mass() {
    let mut rng = SplitMix64::new(0xF004);
    for _ in 0..64 {
        // With nu = 1/n, outliers are not allowed: all points inside R².
        let ps = point_set(&mut rng, 50, 2);
        let ids: Vec<u32> = (0..ps.len() as u32).collect();
        let model = SvddProblem::new(&ps, &ids, GaussianKernel::from_width(50.0)).solve();
        // Margin: SMO stops at a 1e-4 KKT tolerance, so normal SVs sit on
        // the sphere only up to that accuracy.
        let inside = ids
            .iter()
            .filter(|&&id| model.decision(&ps, ps.point(id)) <= model.radius_sq() + 1e-3)
            .count();
        assert!(
            inside as f64 >= 0.99 * ids.len() as f64,
            "{}/{} inside",
            inside,
            ids.len()
        );
    }
}

#[test]
fn dbsvec_labels_are_complete_and_dense() {
    let mut rng = SplitMix64::new(0xF005);
    for _ in 0..64 {
        let ps = point_set(&mut rng, 150, 3);
        let result = Dbsvec::new(DbsvecConfig::new(20.0, 4)).fit(&ps);
        let labels = result.labels();
        assert_eq!(labels.len(), ps.len());
        // Cluster ids are dense 0..k.
        let k = labels.num_clusters();
        for a in labels.assignments().iter().flatten() {
            assert!((*a as usize) < k);
        }
        // Sizes sum to n - noise.
        let total: usize = labels.cluster_sizes().iter().sum();
        assert_eq!(total + labels.noise_count(), ps.len());
        // Every non-empty cluster id actually occurs.
        for (c, &size) in labels.cluster_sizes().iter().enumerate() {
            assert!(size > 0, "cluster {c} is empty");
        }
    }
}

#[test]
fn dbsvec_noise_points_really_have_no_core_neighbor() {
    let mut rng = SplitMix64::new(0xF006);
    for _ in 0..64 {
        let ps = point_set(&mut rng, 120, 2);
        let eps = 15.0;
        let min_pts = 4;
        let result = Dbsvec::new(DbsvecConfig::new(eps, min_pts)).fit(&ps);
        let scan = LinearScan::build(&ps);
        for i in 0..ps.len() {
            if result.labels().is_noise(i) {
                // DBSCAN semantics: a noise point is non-core and has no
                // core point in its eps-neighborhood.
                let neigh = scan.range_vec(ps.point(i as u32), eps);
                assert!(neigh.len() < min_pts, "noise point {i} is core");
                for &j in &neigh {
                    let jn = scan.count_range(ps.point(j), eps);
                    assert!(jn < min_pts, "noise point {i} has core neighbor {j}");
                }
            }
        }
    }
}

#[test]
fn dbsvec_theorems_hold_on_adversarial_random_data() {
    let mut rng = SplitMix64::new(0xF007);
    for _ in 0..64 {
        // Uniform random clouds connect clusters through thin single-point
        // chains — exactly the §III-C Condition 1/2 regime where DBSVEC is
        // *allowed* to split a DBSCAN cluster. What the paper guarantees
        // unconditionally (and we assert exactly) is:
        //   Theorem 1: DBSVEC never joins points DBSCAN separates;
        //   Theorem 3: the noise sets are identical.
        // Recall stays high even here; the >0.999 bound for clustered data
        // lives in tests/dbsvec_vs_dbscan.rs.
        let ps = point_set(&mut rng, 150, 3);
        let eps = 25.0;
        let min_pts = 4;
        let dbscan = Dbscan::new(eps, min_pts).fit(&ps).clustering;
        let dbsvec = Dbsvec::new(DbsvecConfig::new(eps, min_pts))
            .fit(&ps)
            .into_labels();
        let r = recall(dbscan.assignments(), dbsvec.assignments());
        assert!(r > 0.75, "recall {r} collapsed even for adversarial data");
        let (a, b) = (dbscan.assignments(), dbsvec.assignments());
        // Core flags: necessity is a statement about core points — a border
        // point in range of two clusters may legitimately land in either
        // (DBSCAN itself is order-dependent there; cf. Theorem 2's "same
        // core points" hypothesis).
        let scan = LinearScan::build(&ps);
        let core: Vec<bool> = (0..ps.len())
            .map(|i| scan.count_range(ps.point(i as u32), eps) >= min_pts)
            .collect();
        for i in 0..ps.len() {
            // Theorem 3: identical noise sets.
            assert_eq!(a[i].is_none(), b[i].is_none(), "noise mismatch at {i}");
            if !core[i] {
                continue;
            }
            // Theorem 1 (necessity) over core-core pairs.
            for j in (i + 1..ps.len()).step_by(3) {
                if core[j] && b[i].is_some() && b[i] == b[j] {
                    assert!(
                        a[i] == a[j],
                        "DBSVEC joined core points {i},{j} but DBSCAN separated them"
                    );
                }
            }
        }
    }
}

#[test]
fn dbsvec_core_points_have_dense_neighborhoods_at_any_thread_count() {
    let threads = test_threads();
    let mut rng = SplitMix64::new(0xF00C);
    for _ in 0..64 {
        let ps = point_set(&mut rng, 130, 3);
        let eps = 20.0;
        let min_pts = 4;
        let result = Dbsvec::new(DbsvecConfig::new(eps, min_pts).with_threads(threads)).fit(&ps);
        let scan = LinearScan::build(&ps);
        for &c in result.core_points() {
            let count = scan.count_range(ps.point(c), eps);
            assert!(
                count >= min_pts,
                "reported core point {c} has only {count} ε-neighbors (threads={threads})"
            );
        }
    }
}

#[test]
fn dbsvec_clustered_points_touch_a_core_of_their_cluster_at_any_thread_count() {
    let threads = test_threads();
    let mut rng = SplitMix64::new(0xF00D);
    for _ in 0..64 {
        let ps = point_set(&mut rng, 130, 2);
        let eps = 18.0;
        let min_pts = 4;
        let result = Dbsvec::new(DbsvecConfig::new(eps, min_pts).with_threads(threads)).fit(&ps);
        let labels = result.labels();
        let scan = LinearScan::build(&ps);
        let eps_sq = eps * eps;
        for i in 0..ps.len() {
            let Some(cid) = labels.assignments()[i] else {
                continue;
            };
            // Every clustered point is density-reachable: within ε of some
            // core point carrying the same cluster label.
            let witness = scan
                .range_vec(ps.point(i as u32), eps)
                .into_iter()
                .any(|j| {
                    labels.assignments()[j as usize] == Some(cid)
                        && scan.count_range(ps.point(j), eps) >= min_pts
                        && ps.squared_distance(i as u32, j) <= eps_sq
                });
            assert!(
                witness,
                "clustered point {i} has no same-cluster core within ε (threads={threads})"
            );
        }
    }
}

#[test]
fn dbsvec_noise_verification_never_attaches_beyond_eps_at_any_thread_count() {
    let threads = test_threads();
    let mut rng = SplitMix64::new(0xF00E);
    for _ in 0..64 {
        let ps = point_set(&mut rng, 120, 3);
        let eps = 22.0;
        let min_pts = 5;
        let result = Dbsvec::new(DbsvecConfig::new(eps, min_pts).with_threads(threads)).fit(&ps);
        let labels = result.labels();
        let scan = LinearScan::build(&ps);
        let eps_sq = eps * eps;
        for i in 0..ps.len() {
            if labels.assignments()[i].is_none() {
                continue;
            }
            if scan.count_range(ps.point(i as u32), eps) >= min_pts {
                continue; // core points carry their own cluster
            }
            // A border point (attached by noise verification or absorption)
            // must sit within ε of its *nearest* core point in particular —
            // i.e. of some core point at all.
            let nearest_core_sq = (0..ps.len() as u32)
                .filter(|&j| scan.count_range(ps.point(j), eps) >= min_pts)
                .map(|j| ps.squared_distance(i as u32, j))
                .fold(f64::INFINITY, f64::min);
            assert!(
                nearest_core_sq <= eps_sq,
                "border point {i} attached at distance² {nearest_core_sq} > ε² (threads={threads})"
            );
        }
    }
}

/// Sampled-mode invariant: restricting core *candidacy* to a subsample
/// never weakens core *density* — every reported core still has MinPts
/// ε-neighbors counted by brute force over the full point set (candidates
/// gate who may become a core; neighborhoods are always exact).
#[test]
fn sampled_core_points_still_meet_min_pts_by_brute_force() {
    let threads = test_threads();
    let mut rng = SplitMix64::new(0xF012);
    for round in 0..48u64 {
        let ps = point_set(&mut rng, 130, 3);
        let eps = 20.0;
        let min_pts = 4;
        let base = DbsvecConfig::new(eps, min_pts).with_threads(threads);
        let config = if round % 2 == 0 {
            base.with_uniform_sampling(rng.next_f64_range(0.2, 0.9), 0x5EED + round)
        } else {
            base.with_kcenter_sampling((ps.len() / 3).max(1), 0x5EED + round)
        };
        let result = Dbsvec::new(config).fit(&ps);
        let scan = LinearScan::build(&ps);
        for &c in result.core_points() {
            let count = scan.count_range(ps.point(c), eps);
            assert!(
                count >= min_pts,
                "sampled core {c} has only {count} ε-neighbors (threads={threads})"
            );
        }
    }
}

/// Sampled-mode invariant: every clustered point — expanded or attached
/// by the post-pass — sits within ε of a *discovered* core carrying the
/// same cluster label. (Under sampling the discovered cores are a subset
/// of the density cores, so the witness must come from the fit itself.)
#[test]
fn sampled_attachment_stays_within_eps_of_a_same_cluster_core() {
    let threads = test_threads();
    let mut rng = SplitMix64::new(0xF013);
    for round in 0..48u64 {
        let ps = point_set(&mut rng, 130, 2);
        let eps = 18.0;
        let min_pts = 4;
        let config = DbsvecConfig::new(eps, min_pts)
            .with_uniform_sampling(rng.next_f64_range(0.3, 0.8), 0xA77 + round)
            .with_threads(threads);
        let result = Dbsvec::new(config).fit(&ps);
        let labels = result.labels();
        let eps_sq = eps * eps;
        for i in 0..ps.len() {
            let Some(cid) = labels.assignments()[i] else {
                continue;
            };
            let witness = result.core_points().iter().any(|&c| {
                labels.assignments()[c as usize] == Some(cid)
                    && ps.squared_distance(i as u32, c) <= eps_sq
            });
            assert!(
                witness,
                "clustered point {i} has no same-cluster discovered core within ε \
                 (threads={threads})"
            );
        }
    }
}

/// A full-coverage draw is not "approximately" exact — it must be the
/// exact fit bit for bit: same labels, same stats, same core set.
#[test]
fn sampling_rate_one_is_bit_identical_to_exact_at_any_thread_count() {
    let threads = test_threads();
    let mut rng = SplitMix64::new(0xF014);
    for round in 0..32u64 {
        let ps = point_set(&mut rng, 120, 3);
        let exact = Dbsvec::new(DbsvecConfig::new(20.0, 4).with_threads(threads)).fit(&ps);
        let sampled = Dbsvec::new(
            DbsvecConfig::new(20.0, 4)
                .with_uniform_sampling(1.0, 0xFACE + round)
                .with_threads(threads),
        )
        .fit(&ps);
        assert_eq!(exact.labels(), sampled.labels(), "threads={threads}");
        assert_eq!(exact.stats(), sampled.stats(), "threads={threads}");
        assert_eq!(exact.core_points(), sampled.core_points());
    }
}

/// The determinism contract extends to sampled fits: the threaded fit
/// (DBSVEC_TEST_THREADS, CI pins 1 and 4) must reproduce the sequential
/// one bit for bit — labels, stats, and discovered cores.
#[test]
fn sampled_fits_are_thread_count_invariant() {
    let threads = test_threads();
    let mut rng = SplitMix64::new(0xF015);
    for round in 0..32u64 {
        let ps = point_set(&mut rng, 120, 3);
        let base = DbsvecConfig::new(20.0, 4);
        let config = if round % 2 == 0 {
            base.with_uniform_sampling(0.5, 0xBEE + round)
        } else {
            base.with_kcenter_sampling((ps.len() / 4).max(1), 0xBEE + round)
        };
        let sequential = Dbsvec::new(config.clone().with_threads(1)).fit(&ps);
        let threaded = Dbsvec::new(config.with_threads(threads)).fit(&ps);
        assert_eq!(sequential.labels(), threaded.labels(), "threads={threads}");
        assert_eq!(sequential.stats(), threaded.stats(), "threads={threads}");
        assert_eq!(sequential.core_points(), threaded.core_points());
    }
}

/// A fitted engine over a random 2-D cloud plus its mirrored tracked set
/// (at load, the tracked set is exactly the fitted cores).
fn random_engine(rng: &mut SplitMix64) -> (Engine, Vec<Vec<f64>>, f64, usize) {
    let n = 60 + rng.next_below(60) as usize;
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|_| {
            vec![
                rng.next_f64_range(-30.0, 30.0),
                rng.next_f64_range(-30.0, 30.0),
            ]
        })
        .collect();
    let ps = PointSet::from_rows(&rows);
    let eps = 6.0;
    let min_pts = 4;
    let result = Dbsvec::new(DbsvecConfig::new(eps, min_pts)).fit(&ps);
    let core_ids: Vec<_> = result.core_points().to_vec();
    let artifact = ModelArtifact::from_fit(&ps, result.labels(), &core_ids, eps, min_pts as u32)
        .expect("fit produces a valid artifact");
    let live: Vec<Vec<f64>> = artifact.cores.iter().map(|(_, p)| p.to_vec()).collect();
    (Engine::new(&artifact), live, eps, min_pts)
}

/// One random insert/delete interleaving step; returns whether anything
/// was removed this step.
fn dynamic_step(rng: &mut SplitMix64, engine: &mut Engine, live: &mut Vec<Vec<f64>>) -> bool {
    if rng.next_below(2) == 0 || live.is_empty() {
        let p = vec![
            rng.next_f64_range(-32.0, 32.0),
            rng.next_f64_range(-32.0, 32.0),
        ];
        if !live.contains(&p) {
            engine.ingest(&p);
            live.push(p);
        }
        false
    } else {
        let p = live.swap_remove(rng.next_below(live.len() as u64) as usize);
        engine.remove(&p);
        true
    }
}

/// Deletion invariant: a demoted core really lost its density. Every
/// buffered point — demoted cores included — must have fewer than MinPts
/// tracked points (itself included) within ε, counted by brute force over
/// the mirrored tracked set, after every removal.
#[test]
fn no_demoted_core_keeps_a_dense_neighborhood() {
    let mut rng = SplitMix64::new(0xF00F);
    for _ in 0..24 {
        let (mut engine, mut live, eps, min_pts) = random_engine(&mut rng);
        let eps_sq = eps * eps;
        for _ in 0..40 {
            if !dynamic_step(&mut rng, &mut engine, &mut live) {
                continue;
            }
            for (p, _) in engine.buffered_view() {
                let count = live
                    .iter()
                    .filter(|q| squared_euclidean(p, q) <= eps_sq)
                    .count();
                assert!(
                    count < min_pts,
                    "buffered point {p:?} has {count} ≥ MinPts tracked neighbors"
                );
            }
        }
    }
}

/// Deletion invariant: clusters stay ε-connected through repairs. After
/// every removal, each core of a multi-core cluster must still have a
/// same-cluster core within ε — a split that should have happened but
/// didn't would strand a core among ε-unreachable labelmates.
#[test]
fn every_cluster_member_keeps_a_same_cluster_core_within_eps() {
    let mut rng = SplitMix64::new(0xF010);
    for _ in 0..24 {
        let (mut engine, mut live, eps, _) = random_engine(&mut rng);
        let eps_sq = eps * eps;
        for _ in 0..40 {
            if !dynamic_step(&mut rng, &mut engine, &mut live) {
                continue;
            }
            let snap = engine.snapshot();
            let mut cluster_sizes = vec![0usize; snap.num_clusters as usize];
            for &l in &snap.core_labels {
                cluster_sizes[l as usize] += 1;
            }
            for (i, p) in snap.cores.iter() {
                let l = snap.core_labels[i as usize];
                if cluster_sizes[l as usize] < 2 {
                    continue;
                }
                let witness = snap.cores.iter().any(|(j, q)| {
                    j != i && snap.core_labels[j as usize] == l && squared_euclidean(p, q) <= eps_sq
                });
                assert!(witness, "core {p:?} stranded in cluster {l} beyond ε");
            }
        }
    }
}

/// Deletion invariant: removals never loosen the assignment rule. After
/// every removal, a query labels into a cluster iff a live core lies
/// within ε — noise can never re-attach through a stale core.
#[test]
fn noise_never_reattaches_beyond_eps_after_removals() {
    let mut rng = SplitMix64::new(0xF011);
    for _ in 0..24 {
        let (mut engine, mut live, eps, _) = random_engine(&mut rng);
        let eps_sq = eps * eps;
        for _ in 0..40 {
            if !dynamic_step(&mut rng, &mut engine, &mut live) {
                continue;
            }
            let snap = engine.snapshot();
            for _ in 0..4 {
                let q = vec![
                    rng.next_f64_range(-35.0, 35.0),
                    rng.next_f64_range(-35.0, 35.0),
                ];
                let in_range = snap
                    .cores
                    .iter()
                    .any(|(_, p)| squared_euclidean(p, &q) <= eps_sq);
                match engine.assign(&q) {
                    Assignment::Cluster(_) => {
                        assert!(in_range, "{q:?} attached with no live core within ε")
                    }
                    Assignment::Noise => {
                        assert!(!in_range, "{q:?} called noise with a live core within ε")
                    }
                }
            }
        }
    }
}

#[test]
fn metric_identities() {
    let mut rng = SplitMix64::new(0xF008);
    for _ in 0..64 {
        let labels = assignment(&mut rng, 80);
        assert_eq!(recall(&labels, &labels), 1.0);
        let ari = adjusted_rand_index(&labels, &labels);
        assert!((ari - 1.0).abs() < 1e-9);
    }
}

#[test]
fn recall_is_monotone_under_merging() {
    let mut rng = SplitMix64::new(0xF009);
    for _ in 0..64 {
        // Merging every cluster into one can never lose reference pairs.
        let labels = assignment(&mut rng, 60);
        let merged: Vec<Option<u32>> = labels.iter().map(|l| l.map(|_| 0)).collect();
        assert_eq!(recall(&labels, &merged), 1.0);
    }
}

#[test]
fn recall_matches_brute_force() {
    let mut rng = SplitMix64::new(0xF00A);
    for _ in 0..64 {
        let a = assignment(&mut rng, 40);
        let b = assignment(&mut rng, 40);
        let fast = recall(&a, &b);
        let mut denom = 0u64;
        let mut kept = 0u64;
        for i in 0..a.len() {
            for j in (i + 1)..a.len() {
                if a[i].is_some() && a[i] == a[j] {
                    denom += 1;
                    if b[i].is_some() && b[i] == b[j] {
                        kept += 1;
                    }
                }
            }
        }
        let brute = if denom == 0 {
            1.0
        } else {
            kept as f64 / denom as f64
        };
        assert!((fast - brute).abs() < 1e-12, "fast {fast} vs brute {brute}");
    }
}

#[test]
fn ari_is_symmetric() {
    let mut rng = SplitMix64::new(0xF00B);
    for _ in 0..64 {
        let a = assignment(&mut rng, 50);
        let b = assignment(&mut rng, 50);
        let ab = adjusted_rand_index(&a, &b);
        let ba = adjusted_rand_index(&b, &a);
        assert!((ab - ba).abs() < 1e-9);
        assert!(ab <= 1.0 + 1e-9);
    }
}
