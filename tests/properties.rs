//! Property-based tests over the core data structures and invariants.

use proptest::prelude::*;

use dbsvec::baselines::Dbscan;
use dbsvec::index::{GridIndex, KdTree, LinearScan, RStarTree, RangeIndex};
use dbsvec::metrics::{adjusted_rand_index, recall};
use dbsvec::svdd::{GaussianKernel, SvddProblem};
use dbsvec::{Dbsvec, DbsvecConfig, PointSet};

/// Strategy: a point set of n points in d dimensions with bounded coords.
fn point_set(max_n: usize, max_d: usize) -> impl Strategy<Value = PointSet> {
    (1..=max_d).prop_flat_map(move |d| {
        prop::collection::vec(prop::collection::vec(-100.0..100.0f64, d), 1..=max_n)
            .prop_map(|rows| PointSet::from_rows(&rows))
    })
}

/// Strategy: a clustering assignment over n points.
fn assignment(n: usize) -> impl Strategy<Value = Vec<Option<u32>>> {
    prop::collection::vec(prop::option::weighted(0.8, 0u32..5), n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_indexes_agree_with_linear_scan(
        ps in point_set(120, 4),
        query in prop::collection::vec(-120.0..120.0f64, 4),
        eps in 0.1..150.0f64,
    ) {
        let query = &query[..ps.dims()];
        let mut expected = LinearScan::build(&ps).range_vec(query, eps);
        expected.sort_unstable();

        let mut kd = KdTree::build(&ps).range_vec(query, eps);
        kd.sort_unstable();
        prop_assert_eq!(&kd, &expected);

        let mut rstar = RStarTree::build(&ps).range_vec(query, eps);
        rstar.sort_unstable();
        prop_assert_eq!(&rstar, &expected);

        let mut grid = GridIndex::build(&ps, eps.max(1.0)).range_vec(query, eps);
        grid.sort_unstable();
        prop_assert_eq!(&grid, &expected);
    }

    #[test]
    fn incremental_rstar_agrees_with_bulk_load(ps in point_set(80, 3)) {
        let bulk = RStarTree::build(&ps);
        let mut incremental = RStarTree::new(&ps);
        for id in 0..ps.len() as u32 {
            incremental.insert(id);
        }
        let query = vec![0.0; ps.dims()];
        for eps in [1.0, 10.0, 50.0, 200.0] {
            let mut a = bulk.range_vec(&query, eps);
            let mut b = incremental.range_vec(&query, eps);
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn svdd_solution_is_a_feasible_simplex_point(
        ps in point_set(60, 3),
        nu in 0.05..1.0f64,
    ) {
        let ids: Vec<u32> = (0..ps.len() as u32).collect();
        let model = SvddProblem::new(&ps, &ids, GaussianKernel::from_width(5.0))
            .with_nu(nu.max(1.0 / ids.len() as f64))
            .solve();
        let sum: f64 = model.alphas().iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-6, "sum = {}", sum);
        let c = 1.0 / (nu.max(1.0 / ids.len() as f64) * ids.len() as f64);
        for &a in model.alphas() {
            prop_assert!(a >= -1e-12 && a <= c + 1e-9);
        }
        prop_assert!(model.num_support_vectors() >= 1);
    }

    #[test]
    fn svdd_sphere_contains_most_mass(ps in point_set(50, 2)) {
        // With nu = 1/n, outliers are not allowed: all points inside R².
        let ids: Vec<u32> = (0..ps.len() as u32).collect();
        let model = SvddProblem::new(&ps, &ids, GaussianKernel::from_width(50.0)).solve();
        // Margin: SMO stops at a 1e-4 KKT tolerance, so normal SVs sit on
        // the sphere only up to that accuracy.
        let inside = ids
            .iter()
            .filter(|&&id| model.decision(&ps, ps.point(id)) <= model.radius_sq() + 1e-3)
            .count();
        prop_assert!(inside as f64 >= 0.99 * ids.len() as f64,
            "{}/{} inside", inside, ids.len());
    }

    #[test]
    fn dbsvec_labels_are_complete_and_dense(ps in point_set(150, 3)) {
        let result = Dbsvec::new(DbsvecConfig::new(20.0, 4)).fit(&ps);
        let labels = result.labels();
        prop_assert_eq!(labels.len(), ps.len());
        // Cluster ids are dense 0..k.
        let k = labels.num_clusters();
        for a in labels.assignments().iter().flatten() {
            prop_assert!((*a as usize) < k);
        }
        // Sizes sum to n - noise.
        let total: usize = labels.cluster_sizes().iter().sum();
        prop_assert_eq!(total + labels.noise_count(), ps.len());
        // Every non-empty cluster id actually occurs.
        for (c, &size) in labels.cluster_sizes().iter().enumerate() {
            prop_assert!(size > 0, "cluster {} is empty", c);
        }
    }

    #[test]
    fn dbsvec_noise_points_really_have_no_core_neighbor(ps in point_set(120, 2)) {
        let eps = 15.0;
        let min_pts = 4;
        let result = Dbsvec::new(DbsvecConfig::new(eps, min_pts)).fit(&ps);
        let scan = LinearScan::build(&ps);
        for i in 0..ps.len() {
            if result.labels().is_noise(i) {
                // DBSCAN semantics: a noise point is non-core and has no
                // core point in its eps-neighborhood.
                let neigh = scan.range_vec(ps.point(i as u32), eps);
                prop_assert!(neigh.len() < min_pts, "noise point {} is core", i);
                for &j in &neigh {
                    let jn = scan.count_range(ps.point(j), eps);
                    prop_assert!(jn < min_pts,
                        "noise point {} has core neighbor {}", i, j);
                }
            }
        }
    }

    #[test]
    fn dbsvec_theorems_hold_on_adversarial_random_data(ps in point_set(150, 3)) {
        // Uniform random clouds connect clusters through thin single-point
        // chains — exactly the §III-C Condition 1/2 regime where DBSVEC is
        // *allowed* to split a DBSCAN cluster. What the paper guarantees
        // unconditionally (and we assert exactly) is:
        //   Theorem 1: DBSVEC never joins points DBSCAN separates;
        //   Theorem 3: the noise sets are identical.
        // Recall stays high even here; the >0.999 bound for clustered data
        // lives in tests/dbsvec_vs_dbscan.rs.
        let eps = 25.0;
        let min_pts = 4;
        let dbscan = Dbscan::new(eps, min_pts).fit(&ps).clustering;
        let dbsvec = Dbsvec::new(DbsvecConfig::new(eps, min_pts)).fit(&ps).into_labels();
        let r = recall(dbscan.assignments(), dbsvec.assignments());
        prop_assert!(r > 0.75, "recall {} collapsed even for adversarial data", r);
        let (a, b) = (dbscan.assignments(), dbsvec.assignments());
        // Core flags: necessity is a statement about core points — a border
        // point in range of two clusters may legitimately land in either
        // (DBSCAN itself is order-dependent there; cf. Theorem 2's "same
        // core points" hypothesis).
        let scan = LinearScan::build(&ps);
        let core: Vec<bool> = (0..ps.len())
            .map(|i| scan.count_range(ps.point(i as u32), eps) >= min_pts)
            .collect();
        for i in 0..ps.len() {
            // Theorem 3: identical noise sets.
            prop_assert_eq!(a[i].is_none(), b[i].is_none(), "noise mismatch at {}", i);
            if !core[i] {
                continue;
            }
            // Theorem 1 (necessity) over core-core pairs.
            for j in (i + 1..ps.len()).step_by(3) {
                if core[j] && b[i].is_some() && b[i] == b[j] {
                    prop_assert!(a[i] == a[j],
                        "DBSVEC joined core points {},{} but DBSCAN separated them", i, j);
                }
            }
        }
    }

    #[test]
    fn metric_identities(labels in assignment(80)) {
        prop_assert_eq!(recall(&labels, &labels), 1.0);
        let ari = adjusted_rand_index(&labels, &labels);
        prop_assert!((ari - 1.0).abs() < 1e-9);
    }

    #[test]
    fn recall_is_monotone_under_merging(labels in assignment(60)) {
        // Merging every cluster into one can never lose reference pairs.
        let merged: Vec<Option<u32>> = labels.iter().map(|l| l.map(|_| 0)).collect();
        prop_assert_eq!(recall(&labels, &merged), 1.0);
    }

    #[test]
    fn recall_matches_brute_force(
        a in assignment(40),
        b in assignment(40),
    ) {
        let fast = recall(&a, &b);
        let mut denom = 0u64;
        let mut kept = 0u64;
        for i in 0..a.len() {
            for j in (i + 1)..a.len() {
                if a[i].is_some() && a[i] == a[j] {
                    denom += 1;
                    if b[i].is_some() && b[i] == b[j] {
                        kept += 1;
                    }
                }
            }
        }
        let brute = if denom == 0 { 1.0 } else { kept as f64 / denom as f64 };
        prop_assert!((fast - brute).abs() < 1e-12, "fast {} vs brute {}", fast, brute);
    }

    #[test]
    fn ari_is_symmetric(a in assignment(50), b in assignment(50)) {
        let ab = adjusted_rand_index(&a, &b);
        let ba = adjusted_rand_index(&b, &a);
        prop_assert!((ab - ba).abs() < 1e-9);
        prop_assert!(ab <= 1.0 + 1e-9);
    }
}
