//! Integration tests for the beyond-the-paper extensions: ball tree,
//! FDBSCAN, parallel DBSCAN, HDBSCAN, out-of-sample prediction, and the
//! SVDD boundary extraction — exercised together through the facade.

use dbsvec::baselines::{Dbscan, FDbscan, Hdbscan, ParallelDbscan};
use dbsvec::core::ClusterModel;
use dbsvec::datasets::{gaussian_mixture, two_moons};
use dbsvec::index::BallTree;
use dbsvec::metrics::{pair_f1, recall};
use dbsvec::svdd::{
    decision_boundary_around_targets, kernel_width_center_radius, GaussianKernel, SvddProblem,
};
use dbsvec::{Dbsvec, DbsvecConfig};

#[test]
fn dbsvec_over_a_ball_tree_matches_the_rtree_run() {
    let ds = gaussian_mixture(1500, 16, 5, 900.0, 1e5, 3);
    let eps = dbsvec::datasets::standins::suggest_eps(&ds.points, 8, 1);
    let config = DbsvecConfig::new(eps, 8);
    let via_rtree = Dbsvec::new(config.clone()).fit(&ds.points);
    let ball = BallTree::build(&ds.points);
    let via_ball = Dbsvec::new(config).fit_with_index(&ds.points, &ball);
    // Exact engines => identical clusterings. (Run *statistics* may differ
    // in the last few support vectors: engines report neighbors in
    // different orders, which perturbs SMO tie-breaks.)
    assert_eq!(via_rtree.labels(), via_ball.labels());
    let (a, b) = (via_rtree.stats(), via_ball.stats());
    assert_eq!(a.seeds, b.seeds);
    assert!(
        (a.range_queries as f64 - b.range_queries as f64).abs() <= 0.05 * a.range_queries as f64
    );
}

#[test]
fn parallel_dbscan_agrees_with_dbsvec_on_core_structure() {
    let ds = gaussian_mixture(2000, 4, 6, 800.0, 1e5, 5);
    let eps = dbsvec::datasets::standins::suggest_eps(&ds.points, 8, 2);
    let par = ParallelDbscan::new(eps, 8, 4).fit(&ds.points);
    let svec = Dbsvec::new(DbsvecConfig::new(eps, 8)).fit(&ds.points);
    let r = recall(par.clustering.assignments(), svec.labels().assignments());
    assert!(r > 0.999, "recall {r}");
    assert_eq!(par.clustering.num_clusters(), svec.num_clusters());
}

#[test]
fn fdbscan_approximates_and_hdbscan_generalizes() {
    let moons = two_moons(2000, 0.05, 9);
    let exact = Dbscan::new(0.12, 6).fit(&moons.points).clustering;
    assert_eq!(exact.num_clusters(), 2);

    // FDBSCAN: far fewer queries, approximately the same clustering.
    let fast = FDbscan::new(0.12, 6).fit(&moons.points);
    assert!(fast.stats.range_queries < 2000 / 2);
    let f1 = pair_f1(exact.assignments(), fast.clustering.assignments());
    assert!(f1 > 0.8, "FDBSCAN F1 {f1}");

    // HDBSCAN: no eps at all, same two moons.
    let hier = Hdbscan::new(6, 40).fit(&moons.points);
    assert_eq!(hier.clustering.num_clusters(), 2);
    let r = recall(exact.assignments(), hier.clustering.assignments());
    assert!(r > 0.95, "HDBSCAN recall {r}");
}

#[test]
fn fitted_model_classifies_a_held_out_stream() {
    // Fit on one sample of the generator, predict a fresh sample.
    let train = gaussian_mixture(1200, 3, 4, 700.0, 1e5, 11);
    let eps = dbsvec::datasets::standins::suggest_eps(&train.points, 8, 3);
    let result = Dbsvec::new(DbsvecConfig::new(eps, 8)).fit(&train.points);
    assert_eq!(result.num_clusters(), 4);
    let model = ClusterModel::new(&train.points, result.labels(), result.core_points(), eps)
        .expect("valid fit produces a valid model");

    let test = gaussian_mixture(1200, 3, 4, 700.0, 1e5, 11); // same centers (same seed)
    let predictions = model.predict_batch(&test.points);
    // Ground-truth agreement: points of one generator cluster map to one
    // predicted cluster.
    let mut agree = 0;
    let mut total = 0;
    for i in 0..test.len() {
        for j in (i + 1)..test.len().min(i + 40) {
            let same_truth = test.truth[i] == test.truth[j];
            if let (Some(a), Some(b)) = (predictions[i], predictions[j]) {
                total += 1;
                if (a == b) == same_truth {
                    agree += 1;
                }
            }
        }
    }
    assert!(total > 1000, "too few classified pairs ({total})");
    assert!(
        agree as f64 > 0.99 * total as f64,
        "pairwise agreement {agree}/{total}"
    );
}

#[test]
fn boundary_extraction_composes_with_clustering() {
    // Cluster a mixture with DBSVEC, then describe one found cluster with
    // SVDD and check the boundary separates it from the other cluster.
    let ds = gaussian_mixture(1200, 2, 2, 2000.0, 1e5, 21);
    let eps = dbsvec::datasets::standins::suggest_eps(&ds.points, 8, 4);
    let result = Dbsvec::new(DbsvecConfig::new(eps, 8)).fit(&ds.points);
    assert_eq!(result.num_clusters(), 2);
    let members = result.labels().cluster_members();
    let cluster0 = &members[0];

    let sigma = kernel_width_center_radius(&ds.points, cluster0);
    let model = SvddProblem::new(&ds.points, cluster0, GaussianKernel::from_width(sigma))
        .with_nu(0.02)
        .solve();
    let segments = decision_boundary_around_targets(&model, &ds.points, 500.0, 120);
    assert!(!segments.is_empty());

    // Nearly all of cluster 0 inside; nearly all of cluster 1 outside.
    let inside = |ids: &[u32]| {
        ids.iter()
            .filter(|&&id| model.contains(&ds.points, ds.points.point(id)))
            .count()
    };
    let own = inside(cluster0);
    let other = inside(&members[1]);
    assert!(
        own as f64 > 0.9 * cluster0.len() as f64,
        "{own}/{}",
        cluster0.len()
    );
    assert!(
        (other as f64) < 0.1 * members[1].len() as f64,
        "{other}/{}",
        members[1].len()
    );
}
